"""Delta-vs-rebuild differential tests: the PR-10 bit-identity proof.

Every test here mutates a dataset through the maintenance seam
(:meth:`QueryEngine.apply_delta`) and asserts — via the :mod:`differential`
harness — that the maintained engine is indistinguishable from an engine
rebuilt from scratch on the mutated dataset: exact answer fingerprints,
matching oracle-call budgets, and byte-for-byte equal index payloads.
Covered:

* all three engine families (``2d``, ``exact``, ``approximate``) under a
  seeded random insert/delete/update sequence (the exact family insert-only,
  the one shape its arrangement-tree cache supports incrementally);
* both maintenance strategies — ``incremental`` (cheap geometry reuse) and
  ``rebuild`` (staleness threshold exceeded) — land on the same bits;
* the journaled persistence format: a save/load round trip of base snapshot
  plus delta journal replays to the same answers and payload bytes, and a
  re-save of the loaded engine is byte-identical to the original file;
* the wrapper engines (``pool``, ``instrumented``, ``fallback``) that
  override ``apply_delta``: each propagates a delta to the same bits as a
  fresh rebuild.

The oracles on both sides of every differential are constructed with *fixed*
parameters (never derived from a dataset, e.g. via
``at_most_share_plus_slack``) — a dataset-derived constraint would differ
between the base and mutated datasets and the two engines would answer
different questions.

``DELTA_EXERCISED_ENGINES`` below is the fixture list the contract linter's
``delta-equivalence`` rule parses (by AST, never importing this module):
any registered engine overriding ``apply_delta`` must be named here.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from differential import assert_engines_equivalent, make_weight_grid, payload_bytes
from repro.core.engine import ApproxConfig, ExactConfig, TwoDConfig, create_engine
from repro.core.maintenance import DatasetDelta, MaintenanceReport
from repro.data.synthetic import make_compas_like
from repro.exceptions import DatasetError
from repro.fairness.oracle import CountingOracle
from repro.fairness.proportional import ProportionalOracle
from repro.io.index_store import save_engine, load_engine
from repro.obs.instrument import InstrumentedEngine
from repro.parallel.pool import PoolEngine
from repro.resilience.fallback import FallbackEngine

pytestmark = pytest.mark.dynamic

#: Engine registry names whose ``apply_delta`` path this module proves
#: bit-identical to a rebuild.  Parsed by the ``delta-equivalence`` linter
#: rule: every registered engine that overrides ``apply_delta`` must appear.
DELTA_EXERCISED_ENGINES = (
    "2d",
    "exact",
    "approximate",
    "pool",
    "instrumented",
    "fallback",
)

ATTRIBUTES = ["c_days_from_compas", "juv_other_count", "start"]


def fixed_oracle() -> CountingOracle:
    """A constraint with constructor-fixed parameters (see module docstring)."""
    return CountingOracle(
        ProportionalOracle("race", "African-American", 0.3, max_fraction=0.60)
    )


def dataset(n: int, dimension: int, seed: int):
    return make_compas_like(n=n, seed=seed).project(ATTRIBUTES[:dimension])


def random_delta(
    ds,
    seed: int,
    *,
    n_inserts: int = 3,
    deletes: tuple[int, ...] = (1, 5),
    update_index: int | None = 7,
) -> DatasetDelta:
    """A seeded random insert/delete/update sequence against ``ds``."""
    rng = np.random.default_rng(seed)
    inserts = tuple(
        tuple(float(x) for x in row)
        for row in rng.random((n_inserts, ds.n_attributes)) + 0.01
    )
    insert_types = {
        attr: tuple(rng.choice(np.asarray(column), size=n_inserts))
        for attr, column in ds.types.items()
    }
    updates: tuple[tuple[int, tuple[float, ...]], ...] = ()
    if update_index is not None:
        row = tuple(float(x) for x in rng.random(ds.n_attributes) + 0.01)
        updates = ((update_index, row),)
    return DatasetDelta(
        inserts=inserts,
        insert_types=insert_types,
        deletes=deletes,
        updates=updates,
    )


def insert_only_delta(ds, seed: int, n_inserts: int = 2) -> DatasetDelta:
    return random_delta(ds, seed, n_inserts=n_inserts, deletes=(), update_index=None)


def fresh_twin(mutated, config):
    """An engine preprocessed from scratch on the already-mutated dataset."""
    return create_engine(mutated, fixed_oracle(), config).preprocess()


# --------------------------------------------------------------------------- #
# engine families: incremental maintenance == rebuild, bit for bit
# --------------------------------------------------------------------------- #
class TestFamilies:
    def test_two_d_mixed_delta_incremental(self):
        ds = dataset(40, 2, seed=1)
        engine = create_engine(
            ds, fixed_oracle(), TwoDConfig(staleness_fraction=1.0)
        ).preprocess()
        delta = random_delta(ds, seed=0)
        report = engine.apply_delta(delta)
        assert report.strategy == "incremental", report.as_dict()
        assert (report.n_inserted, report.n_deleted, report.n_updated) == (3, 2, 1)
        fresh = fresh_twin(delta.apply(dataset(40, 2, seed=1)), TwoDConfig(staleness_fraction=1.0))
        assert_engines_equivalent(engine, fresh, make_weight_grid(24, 2, seed=3))

    def test_two_d_staleness_forces_rebuild_same_bits(self):
        ds = dataset(40, 2, seed=1)
        engine = create_engine(
            ds, fixed_oracle(), TwoDConfig(staleness_fraction=0.01)
        ).preprocess()
        delta = random_delta(ds, seed=0)
        report = engine.apply_delta(delta)
        assert report.strategy == "rebuild", report.as_dict()
        fresh = fresh_twin(delta.apply(dataset(40, 2, seed=1)), TwoDConfig(staleness_fraction=0.01))
        assert_engines_equivalent(engine, fresh, make_weight_grid(24, 2, seed=3))

    def test_two_d_chained_deltas(self):
        """Two deltas applied in sequence still land on rebuild bits."""
        ds = dataset(40, 2, seed=2)
        engine = create_engine(
            ds, fixed_oracle(), TwoDConfig(staleness_fraction=1.0)
        ).preprocess()
        first = random_delta(ds, seed=10)
        engine.apply_delta(first)
        mutated_once = first.apply(dataset(40, 2, seed=2))
        second = random_delta(mutated_once, seed=11, deletes=(0, 2), update_index=4)
        engine.apply_delta(second)
        fresh = fresh_twin(
            second.apply(mutated_once), TwoDConfig(staleness_fraction=1.0)
        )
        assert_engines_equivalent(engine, fresh, make_weight_grid(24, 2, seed=6))

    @pytest.mark.slow
    def test_exact_insert_only_incremental(self):
        ds = dataset(12, 3, seed=2)
        config = ExactConfig(staleness_fraction=1.0)
        engine = create_engine(ds, fixed_oracle(), config).preprocess()
        delta = insert_only_delta(ds, seed=1)
        report = engine.apply_delta(delta)
        assert report.strategy == "incremental", report.as_dict()
        fresh = fresh_twin(delta.apply(dataset(12, 3, seed=2)), ExactConfig(staleness_fraction=1.0))
        assert_engines_equivalent(engine, fresh, make_weight_grid(24, 3, seed=4))

    def test_exact_mixed_delta_falls_back_to_rebuild(self):
        """Deletes/updates invalidate the arrangement-tree cache -> rebuild."""
        ds = dataset(10, 3, seed=2)
        config = ExactConfig(max_hyperplanes=20, staleness_fraction=1.0)
        engine = create_engine(ds, fixed_oracle(), config).preprocess()
        delta = random_delta(ds, seed=3, n_inserts=1, deletes=(1,), update_index=None)
        report = engine.apply_delta(delta)
        assert report.strategy == "rebuild", report.as_dict()
        fresh = fresh_twin(
            delta.apply(dataset(10, 3, seed=2)),
            ExactConfig(max_hyperplanes=20, staleness_fraction=1.0),
        )
        assert_engines_equivalent(engine, fresh, make_weight_grid(16, 3, seed=5))

    @pytest.mark.slow
    def test_approx_mixed_delta_incremental(self):
        ds = dataset(16, 3, seed=3)
        config = ApproxConfig(n_cells=27, staleness_fraction=1.0)
        engine = create_engine(ds, fixed_oracle(), config).preprocess()
        delta = random_delta(ds, seed=2)
        report = engine.apply_delta(delta)
        assert report.strategy == "incremental", report.as_dict()
        fresh = fresh_twin(
            delta.apply(dataset(16, 3, seed=3)),
            ApproxConfig(n_cells=27, staleness_fraction=1.0),
        )
        assert_engines_equivalent(engine, fresh, make_weight_grid(24, 3, seed=5))


# --------------------------------------------------------------------------- #
# journaled persistence: save -> load -> replay == rebuild
# --------------------------------------------------------------------------- #
class TestJournaledPersistence:
    def test_round_trip_matches_rebuild_and_resave_is_stable(self, tmp_path):
        ds = dataset(40, 2, seed=1)
        engine = create_engine(
            ds, fixed_oracle(), TwoDConfig(staleness_fraction=1.0)
        ).preprocess()
        delta = random_delta(ds, seed=0)
        engine.apply_delta(delta)

        path = tmp_path / "journaled.json"
        save_engine(engine, path, journaled=True)
        loaded = load_engine(path, fixed_oracle())

        fresh = fresh_twin(delta.apply(dataset(40, 2, seed=1)), TwoDConfig(staleness_fraction=1.0))
        grid = make_weight_grid(24, 2, seed=3)
        assert_engines_equivalent(engine, loaded, grid)
        assert payload_bytes(loaded) == payload_bytes(fresh)

        resaved = tmp_path / "resaved.json"
        save_engine(loaded, resaved, journaled=True)
        assert resaved.read_bytes() == path.read_bytes()

    def test_journal_records_every_delta(self, tmp_path):
        ds = dataset(40, 2, seed=2)
        engine = create_engine(
            ds, fixed_oracle(), TwoDConfig(staleness_fraction=1.0)
        ).preprocess()
        first = random_delta(ds, seed=10)
        engine.apply_delta(first)
        second = random_delta(
            first.apply(dataset(40, 2, seed=2)), seed=11, deletes=(0,), update_index=2
        )
        engine.apply_delta(second)
        assert [d.to_dict() for d in engine.journal] == [
            first.to_dict(),
            second.to_dict(),
        ]
        path = tmp_path / "journaled.json"
        save_engine(engine, path, journaled=True)
        stored = json.loads(path.read_text())
        assert stored["payload"]["format"] == "repro.engine-journal/v1"
        assert len(stored["payload"]["deltas"]) == 2


# --------------------------------------------------------------------------- #
# wrapper engines overriding apply_delta (pool / instrumented / fallback)
# --------------------------------------------------------------------------- #
class TestWrapperEngines:
    def _base(self, seed=1):
        ds = dataset(40, 2, seed=seed)
        return ds, create_engine(ds, fixed_oracle(), TwoDConfig(staleness_fraction=1.0))

    def _fresh_after(self, delta, seed=1):
        return fresh_twin(
            delta.apply(dataset(40, 2, seed=seed)), TwoDConfig(staleness_fraction=1.0)
        )

    def test_instrumented_forwards_and_counts(self):
        ds, inner = self._base()
        engine = InstrumentedEngine.from_engine(inner)
        engine.preprocess()
        delta = random_delta(ds, seed=0)
        report = engine.apply_delta(delta)
        assert report.strategy == "incremental"
        fresh = self._fresh_after(delta)
        assert_engines_equivalent(
            engine.inner, fresh, make_weight_grid(24, 2, seed=3), check_oracle_calls=False
        )
        refresh_report = engine.refresh()
        assert refresh_report.strategy == "refresh"

    def test_fallback_maintains_every_tier(self):
        ds, inner = self._base()
        engine = FallbackEngine.from_engines([inner]).preprocess()
        delta = random_delta(ds, seed=0)
        report = engine.apply_delta(delta)
        assert report.engine == "fallback"
        assert report.strategy == "incremental"
        assert report.details["tiers"]
        fresh = self._fresh_after(delta)
        assert_engines_equivalent(
            engine.engines[0], fresh, make_weight_grid(24, 2, seed=3), check_oracle_calls=False
        )

    def test_pool_republishes_maintained_index(self):
        ds, inner = self._base()
        engine = PoolEngine.from_engine(inner, n_workers=1)
        engine.preprocess()
        digest_before = engine.index_digest
        delta = random_delta(ds, seed=0)
        try:
            report = engine.apply_delta(delta)
            assert report.strategy == "incremental"
            assert engine.index_digest != digest_before
            fresh = self._fresh_after(delta)
            grid = make_weight_grid(24, 2, seed=3)
            pooled = engine.suggest_many(grid)
            expected = fresh.suggest_many(grid)
            assert [r.function.weights for r in pooled] == [
                r.function.weights for r in expected
            ]
        finally:
            engine.close()


# --------------------------------------------------------------------------- #
# fast smoke target for scripts/check_all.py
# --------------------------------------------------------------------------- #
class TestDeltaSmoke:
    def test_delta_smoke(self):
        """Tiny 2-D delta differential: the check_all.py dynamic gate."""
        ds = dataset(25, 2, seed=4)
        engine = create_engine(
            ds, fixed_oracle(), TwoDConfig(staleness_fraction=1.0)
        ).preprocess()
        delta = random_delta(ds, seed=4, deletes=(2,), update_index=3)
        report = engine.apply_delta(delta)
        assert isinstance(report, MaintenanceReport)
        fresh = fresh_twin(delta.apply(dataset(25, 2, seed=4)), TwoDConfig(staleness_fraction=1.0))
        assert_engines_equivalent(engine, fresh, make_weight_grid(12, 2, seed=8))


# --------------------------------------------------------------------------- #
# DatasetDelta mechanics
# --------------------------------------------------------------------------- #
class TestDatasetDelta:
    def test_round_trip_through_dict(self):
        ds = dataset(20, 2, seed=1)
        delta = random_delta(ds, seed=0)
        clone = DatasetDelta.from_dict(delta.to_dict())
        assert clone == delta
        assert clone.to_dict() == delta.to_dict()

    def test_counts_and_staleness(self):
        ds = dataset(20, 2, seed=1)
        delta = random_delta(ds, seed=0)
        assert (delta.n_inserted, delta.n_deleted, delta.n_updated) == (3, 2, 1)
        assert delta.n_changes == 6
        assert delta.staleness_fraction(20) == pytest.approx(6 / 20)
        assert not delta.is_empty
        assert not delta.insert_only

    def test_index_map_is_monotone_over_survivors(self):
        ds = dataset(10, 2, seed=1)
        delta = random_delta(ds, seed=0, deletes=(1, 5), update_index=7)
        mapping = delta.index_map(10)
        survivors = sorted(mapping)
        assert 1 not in mapping and 5 not in mapping
        images = [mapping[i] for i in survivors]
        assert images == sorted(images)
        mutated = delta.apply(ds)
        for old, new in mapping.items():
            if old != 7:  # the updated row moved in score space
                assert tuple(ds.scores[old]) == tuple(mutated.scores[new])

    def test_touched_new_indices_cover_inserts_and_updates(self):
        ds = dataset(10, 2, seed=1)
        delta = random_delta(ds, seed=0, deletes=(1, 5), update_index=7)
        touched = delta.touched_new_indices(10, 10 - 2 + 3)
        mapping = delta.index_map(10)
        assert mapping[7] in touched
        assert len(touched) == delta.n_inserted + delta.n_updated

    def test_validation_rejects_bad_shapes(self):
        ds = dataset(10, 2, seed=1)
        with pytest.raises(DatasetError):
            DatasetDelta(deletes=(1, 1))  # duplicate delete
        with pytest.raises(DatasetError):
            DatasetDelta(deletes=(1,), updates=((1, (0.5, 0.5)),))  # overlap
        with pytest.raises(DatasetError):
            DatasetDelta(
                inserts=((0.5, 0.5),), insert_types={}
            ).apply(ds)  # missing type attributes
