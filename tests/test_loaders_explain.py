"""Tests for the real-data CSV loaders and the repair-explanation report."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.core.explain import TopKDelta, explain_repair, format_explanation
from repro.core.result import SuggestionResult
from repro.data.dataset import Dataset
from repro.data.loaders import (
    COMPAS_COLUMN_MAP,
    DOT_COLUMN_MAP,
    load_compas_csv,
    load_dot_csv,
    load_numeric_csv,
)
from repro.exceptions import ConfigurationError, DatasetError, SchemaError
from repro.ranking.scoring import LinearScoringFunction


def write_csv(path, header, rows):
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


# --------------------------------------------------------------------------- #
# generic numeric CSV loader
# --------------------------------------------------------------------------- #
class TestLoadNumericCsv:
    def test_basic_load_and_normalisation(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["a", "b", "group"], [[1, 10, "x"], [3, 30, "y"], [2, 20, "x"]])
        report = load_numeric_csv(path, ["a", "b"], ["group"])
        assert report.n_rows_read == 3
        assert report.n_rows_kept == 3
        assert report.fraction_kept == 1.0
        assert report.dataset.scoring_attributes == ["a", "b"]
        assert report.dataset.column("a").max() == pytest.approx(1.0)
        assert report.dataset.column("a").min() == pytest.approx(0.0)
        assert list(report.dataset.type_column("group")) == ["x", "y", "x"]

    def test_rows_with_missing_values_are_dropped(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["a", "b"], [[1, 2], ["", 3], [4, "not a number"], [5, 6]])
        report = load_numeric_csv(path, ["a", "b"])
        assert report.n_rows_read == 4
        assert report.n_rows_kept == 2
        assert report.fraction_kept == pytest.approx(0.5)

    def test_negative_values_are_shifted_to_non_negative(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["delay"], [[-10], [0], [30]])
        report = load_numeric_csv(path, ["delay"], normalize=False)
        assert report.dataset.column("delay").min() == pytest.approx(0.0)
        assert report.dataset.column("delay").max() == pytest.approx(40.0)

    def test_inverted_columns_flip_the_ordering(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["age", "merit"], [[20, 5], [40, 5], [60, 5]])
        report = load_numeric_csv(path, ["age", "merit"], invert=["age"])
        ages = report.dataset.column("age")
        # The youngest row now has the highest normalised value.
        assert ages[0] == pytest.approx(1.0)
        assert ages[-1] == pytest.approx(0.0)

    def test_unknown_column_is_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["a"], [[1]])
        with pytest.raises(SchemaError):
            load_numeric_csv(path, ["missing"])

    def test_invert_must_be_a_scoring_column(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["a"], [[1]])
        with pytest.raises(SchemaError):
            load_numeric_csv(path, ["a"], invert=["b"])

    def test_invert_requires_normalisation(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["a"], [[1]])
        with pytest.raises(SchemaError):
            load_numeric_csv(path, ["a"], invert=["a"], normalize=False)

    def test_empty_selection_and_unusable_file_are_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["a"], [[""], ["x"]])
        with pytest.raises(SchemaError):
            load_numeric_csv(path, [])
        with pytest.raises(DatasetError):
            load_numeric_csv(path, ["a"])

    def test_empty_file_is_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_numeric_csv(path, ["a"])


# --------------------------------------------------------------------------- #
# COMPAS and DOT loaders
# --------------------------------------------------------------------------- #
def compas_like_csv(path, n: int = 30):
    rng = np.random.default_rng(0)
    header = list(COMPAS_COLUMN_MAP["scoring"]) + list(COMPAS_COLUMN_MAP["types"]) + ["extra"]
    rows = []
    for index in range(n):
        age = int(rng.integers(18, 70))
        rows.append(
            [
                int(rng.integers(0, 1000)),      # c_days_from_compas
                int(rng.integers(0, 5)),         # juv_other_count
                int(rng.integers(-5, 100)),      # days_b_screening_arrest
                int(rng.integers(0, 400)),       # start
                int(rng.integers(0, 800)),       # end
                age,                             # age
                int(rng.integers(0, 20)),        # priors_count
                "Male" if index % 3 else "Female",
                "African-American" if index % 2 else "Caucasian",
                "ignored",
            ]
        )
    write_csv(path, header, rows)
    return rows


class TestCompasLoader:
    def test_loads_and_derives_age_attributes(self, tmp_path):
        path = tmp_path / "compas.csv"
        compas_like_csv(path, n=30)
        report = load_compas_csv(path)
        dataset = report.dataset
        assert report.n_rows_kept == 30
        assert list(dataset.scoring_attributes) == list(COMPAS_COLUMN_MAP["scoring"])
        assert set(dataset.type_attributes) == {"sex", "race", "age_binary", "age_bucketized"}
        assert set(np.unique(dataset.type_column("age_binary"))) <= {
            "35_or_younger",
            "over_35",
        }
        assert set(np.unique(dataset.type_column("age_bucketized"))) <= {
            "30_or_younger",
            "31_to_40",
            "over_40",
        }
        # Normalised scores live in [0, 1].
        assert dataset.scores.min() >= 0.0
        assert dataset.scores.max() <= 1.0

    def test_age_is_inverted(self, tmp_path):
        path = tmp_path / "compas.csv"
        rows = compas_like_csv(path, n=30)
        report = load_compas_csv(path)
        raw_ages = np.array([row[5] for row in rows], dtype=float)
        normalised = report.dataset.column("age")
        # The oldest individual gets the smallest normalised age score.
        assert normalised[int(np.argmax(raw_ages))] == pytest.approx(0.0)
        assert normalised[int(np.argmin(raw_ages))] == pytest.approx(1.0)

    def test_age_threshold_is_configurable(self, tmp_path):
        path = tmp_path / "compas.csv"
        compas_like_csv(path, n=30)
        strict = load_compas_csv(path, age_threshold=25)
        lax = load_compas_csv(path, age_threshold=60)
        strict_young = int(np.sum(strict.dataset.type_column("age_binary") == "35_or_younger"))
        lax_young = int(np.sum(lax.dataset.type_column("age_binary") == "35_or_younger"))
        assert strict_young <= lax_young


class TestDotLoader:
    def test_loads_and_renames_columns(self, tmp_path):
        path = tmp_path / "dot.csv"
        header = list(DOT_COLUMN_MAP["scoring"]) + list(DOT_COLUMN_MAP["types"])
        rows = [
            [5, 12, 8, "DL"],
            [-3, -7, 4, "AA"],
            [60, 75, 15, "WN"],
            ["", 10, 5, "UA"],
        ]
        write_csv(path, header, rows)
        report = load_dot_csv(path)
        dataset = report.dataset
        assert report.n_rows_read == 4
        assert report.n_rows_kept == 3
        assert list(dataset.scoring_attributes) == ["departure_delay", "arrival_delay", "taxi_in"]
        assert dataset.type_attributes == ["carrier"]
        # Delays are inverted: the flight with the largest delay scores lowest.
        assert dataset.column("arrival_delay")[2] == pytest.approx(0.0)


# --------------------------------------------------------------------------- #
# repair explanations
# --------------------------------------------------------------------------- #
@pytest.fixture
def explain_dataset() -> Dataset:
    scores = np.array(
        [
            [0.9, 0.1],
            [0.8, 0.2],
            [0.7, 0.3],
            [0.1, 0.9],
            [0.2, 0.8],
            [0.3, 0.7],
        ]
    )
    groups = ["a", "a", "a", "b", "b", "b"]
    return Dataset(scores, ["x", "y"], types={"group": groups})


def make_result(query_weights, suggested_weights, satisfactory=False) -> SuggestionResult:
    query = LinearScoringFunction(query_weights)
    suggestion = LinearScoringFunction(suggested_weights)
    return SuggestionResult(
        query=query,
        satisfactory=satisfactory,
        function=suggestion,
        angular_distance=query.angular_distance_to(suggestion),
    )


class TestExplainRepair:
    def test_topk_delta_identifies_entering_and_leaving_items(self, explain_dataset):
        result = make_result((1.0, 0.0), (0.0, 1.0))
        explanation = explain_repair(explain_dataset, result, k=3)
        assert explanation.k == 3
        assert set(explanation.delta.entering) == {3, 4, 5}
        assert set(explanation.delta.leaving) == {0, 1, 2}
        assert explanation.delta.staying == 0
        assert explanation.delta.turnover == pytest.approx(1.0)

    def test_no_change_for_identical_functions(self, explain_dataset):
        result = make_result((0.5, 0.5), (0.5, 0.5))
        explanation = explain_repair(explain_dataset, result, k=3)
        assert explanation.delta.entering == ()
        assert explanation.delta.leaving == ()
        assert explanation.delta.staying == 3
        assert all(change == pytest.approx(0.0) for change in explanation.weight_changes.values())

    def test_weight_changes_are_scale_invariant(self, explain_dataset):
        small = explain_repair(explain_dataset, make_result((1.0, 1.0), (1.0, 3.0)), k=3)
        large = explain_repair(explain_dataset, make_result((10.0, 10.0), (2.0, 6.0)), k=3)
        for attribute in ("x", "y"):
            assert small.weight_changes[attribute] == pytest.approx(
                large.weight_changes[attribute]
            )

    def test_group_counts_shift_with_the_repair(self, explain_dataset):
        result = make_result((1.0, 0.0), (0.0, 1.0))
        explanation = explain_repair(explain_dataset, result, k=3)
        assert explanation.group_counts_before["group"] == {"a": 3}
        assert explanation.group_counts_after["group"] == {"b": 3}

    def test_fractional_k(self, explain_dataset):
        result = make_result((1.0, 0.0), (0.0, 1.0))
        explanation = explain_repair(explain_dataset, result, k=0.5)
        assert explanation.k == 3

    def test_dimension_mismatch_rejected(self, explain_dataset):
        result = make_result((1.0, 0.0, 0.0), (0.0, 1.0, 0.0))
        with pytest.raises(ConfigurationError):
            explain_repair(explain_dataset, result, k=3)

    def test_turnover_of_empty_delta(self):
        delta = TopKDelta(k=0, entering=(), leaving=(), staying=0)
        assert delta.turnover == 0.0


class TestFormatExplanation:
    def test_satisfactory_result_short_circuits(self, explain_dataset):
        result = make_result((0.5, 0.5), (0.5, 0.5), satisfactory=True)
        text = format_explanation(explain_repair(explain_dataset, result, k=3))
        assert "already satisfy" in text

    def test_report_mentions_weights_turnover_and_groups(self, explain_dataset):
        result = make_result((1.0, 0.0), (0.0, 1.0))
        text = format_explanation(explain_repair(explain_dataset, result, k=3))
        assert "weight changes" in text
        assert "turnover" in text
        assert "entering" in text and "leaving" in text
        assert "group counts" in text

    def test_item_lists_are_truncated(self, explain_dataset):
        result = make_result((1.0, 0.0), (0.0, 1.0))
        text = format_explanation(explain_repair(explain_dataset, result, k=3), max_items=1)
        assert "..." in text

    def test_end_to_end_with_designer_suggestion(
        self, shared_approx_index, shared_compas_3d
    ):
        from repro.core.approx import md_online

        answer = md_online(shared_approx_index, LinearScoringFunction((0.9, 0.05, 0.05)))
        explanation = explain_repair(shared_compas_3d, answer, k=0.3)
        text = format_explanation(explanation)
        assert isinstance(text, str) and text
