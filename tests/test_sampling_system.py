"""Tests for sampling-based preprocessing (§5.4) and the FairRankingDesigner facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ApproxConfig, ExactConfig, TwoDConfig
from repro.core.sampling import preprocess_with_sampling, validate_index_on_dataset
from repro.core.system import FairRankingDesigner
from repro.data.synthetic import make_compas_like, make_dot_like
from repro.exceptions import ConfigurationError, NotPreprocessedError
from repro.fairness.oracle import CallableOracle
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle
from repro.ranking.queries import random_queries
from repro.ranking.scoring import LinearScoringFunction


class TestSampling:
    def test_sample_size_must_fit(self):
        dataset = make_dot_like(n=100, seed=0)
        oracle = CallableOracle(lambda ordering, data: True, "always")
        with pytest.raises(ConfigurationError):
            preprocess_with_sampling(dataset, oracle, sample_size=200, n_cells=4)

    def test_validation_report_on_permissive_oracle(self):
        dataset = make_dot_like(n=2000, seed=1)
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "carrier", "WN", k=0.1, slack=0.15
        )
        index = preprocess_with_sampling(
            dataset, oracle, sample_size=200, n_cells=36, max_hyperplanes=60, seed=1
        )
        report = validate_index_on_dataset(index, dataset, oracle)
        assert report.n_functions_checked >= 1
        assert 0.0 <= report.fraction_satisfactory <= 1.0

    def test_sample_index_functions_mostly_hold_on_full_data(self):
        """The §6.4 claim: sample-satisfactory functions stay satisfactory on the full data."""
        dataset = make_dot_like(n=5000, seed=2)
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "carrier", "WN", k=0.1, slack=0.12
        )
        index = preprocess_with_sampling(
            dataset, oracle, sample_size=200, n_cells=36, max_hyperplanes=60, seed=2
        )
        report = validate_index_on_dataset(index, dataset, oracle)
        assert report.n_functions_checked >= 1
        assert report.fraction_satisfactory >= 0.75

    def test_empty_report_when_unsatisfiable(self):
        dataset = make_dot_like(n=300, seed=3)
        oracle = CallableOracle(lambda ordering, data: False, "never")
        index = preprocess_with_sampling(
            dataset, oracle, sample_size=40, n_cells=9, max_hyperplanes=10, seed=3
        )
        report = validate_index_on_dataset(index, dataset, oracle)
        assert report.n_functions_checked == 0
        assert not report.all_satisfactory


class TestFairRankingDesignerModes:
    def test_auto_picks_2d(self):
        dataset = make_compas_like(n=40, seed=20).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=10, max_count=7)
        designer = FairRankingDesigner(dataset, oracle)
        assert designer.mode == "2d"

    def test_auto_picks_approximate_for_md(self):
        dataset = make_compas_like(n=20, seed=21).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=6, max_count=4)
        designer = FairRankingDesigner(dataset, oracle)
        assert designer.mode == "approximate"

    def test_invalid_mode_combinations(self):
        dataset_2d = make_compas_like(n=20, seed=22).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        dataset_3d = make_compas_like(n=20, seed=22).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = CallableOracle(lambda ordering, data: True, "always")
        with pytest.raises(ConfigurationError):
            FairRankingDesigner(dataset_2d, oracle, ExactConfig())
        with pytest.raises(ConfigurationError):
            FairRankingDesigner(dataset_3d, oracle, TwoDConfig())
        # The deprecated keyword shim still validates its mode string.
        with pytest.warns(DeprecationWarning), pytest.raises(ConfigurationError):
            FairRankingDesigner(dataset_2d, oracle, mode="bogus")

    def test_query_before_preprocess_raises(self):
        dataset = make_compas_like(n=20, seed=23).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = CallableOracle(lambda ordering, data: True, "always")
        designer = FairRankingDesigner(dataset, oracle)
        assert not designer.is_preprocessed
        with pytest.raises(NotPreprocessedError):
            designer.suggest([0.5, 0.5])

    def test_2d_end_to_end(self):
        dataset = make_compas_like(n=60, seed=24).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.15
        )
        designer = FairRankingDesigner(dataset, oracle).preprocess()
        if not designer.index.has_satisfactory_region:
            pytest.skip("constraint unsatisfiable for this draw")
        result = designer.suggest([0.5, 0.5])
        assert oracle.evaluate_function(result.function, dataset)
        assert designer.check(result.function)

    def test_exact_mode_end_to_end(self):
        dataset = make_compas_like(n=15, seed=25).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=5, max_count=3)
        designer = FairRankingDesigner(
            dataset, oracle, ExactConfig(max_hyperplanes=20)
        ).preprocess()
        for query in random_queries(3, 5, seed=3):
            result = designer.suggest(query)
            assert oracle.evaluate_function(result.function, dataset)

    def test_approximate_mode_end_to_end(self):
        dataset = make_compas_like(n=25, seed=26).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=8, max_count=5)
        designer = FairRankingDesigner(
            dataset, oracle, ApproxConfig(n_cells=25, max_hyperplanes=25)
        ).preprocess()
        for query in random_queries(3, 5, seed=4):
            result = designer.suggest(query)
            assert oracle.evaluate_function(result.function, dataset)

    def test_sample_size_option(self):
        dataset = make_compas_like(n=200, seed=27).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.20
        )
        designer = FairRankingDesigner(dataset, oracle, TwoDConfig(sample_size=50)).preprocess()
        assert designer.is_preprocessed
        if not designer.index.has_satisfactory_region:
            pytest.skip("constraint unsatisfiable for this sample")
        result = designer.suggest([0.5, 0.5])
        assert result.function.dimension == 2

    def test_weight_dimension_validated(self):
        dataset = make_compas_like(n=20, seed=28).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = CallableOracle(lambda ordering, data: True, "always")
        designer = FairRankingDesigner(dataset, oracle).preprocess()
        with pytest.raises(ConfigurationError):
            designer.suggest([0.5, 0.3, 0.2])

    def test_accepts_function_objects_and_lists(self):
        dataset = make_compas_like(n=20, seed=29).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = CallableOracle(lambda ordering, data: True, "always")
        designer = FairRankingDesigner(dataset, oracle).preprocess()
        assert designer.suggest([0.5, 0.5]).satisfactory
        assert designer.suggest(LinearScoringFunction((0.5, 0.5))).satisfactory

    def test_index_property_requires_preprocess(self):
        dataset = make_compas_like(n=20, seed=30).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = CallableOracle(lambda ordering, data: True, "always")
        designer = FairRankingDesigner(dataset, oracle)
        with pytest.raises(NotPreprocessedError):
            _ = designer.index

    def test_suggestion_result_cosine(self):
        dataset = make_compas_like(n=40, seed=31).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        designer = FairRankingDesigner(dataset, oracle).preprocess()
        result = designer.suggest([1.0, 0.01])
        assert -1.0 <= result.cosine_similarity() <= 1.0
        assert result.cosine_similarity() == pytest.approx(np.cos(result.angular_distance))
