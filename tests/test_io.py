"""Tests for the persistence layer (:mod:`repro.io`)."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multi_dim import SatRegions, md_baseline
from repro.core.two_dim import AngularInterval, TwoDIndex
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError, DatasetError, GeometryError
from repro.geometry.angles import HALF_PI
from repro.io import (
    approx_index_from_dict,
    approx_index_to_dict,
    dataset_from_dict,
    dataset_to_dict,
    exact_index_from_dict,
    exact_index_to_dict,
    load_dataset_json,
    load_index,
    save_dataset_json,
    save_index,
    two_d_index_from_dict,
    two_d_index_to_dict,
)
from repro.ranking.scoring import LinearScoringFunction


# --------------------------------------------------------------------------- #
# dataset JSON round trip
# --------------------------------------------------------------------------- #
class TestDatasetJson:
    def test_round_trip_preserves_scores_types_and_name(self, small_compas_3d, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset_json(small_compas_3d, path)
        loaded = load_dataset_json(path)
        assert loaded.name == small_compas_3d.name
        assert loaded.scoring_attributes == list(small_compas_3d.scoring_attributes)
        assert np.allclose(loaded.scores, small_compas_3d.scores)
        assert loaded.type_attributes == small_compas_3d.type_attributes
        assert np.array_equal(
            loaded.type_column("race"), small_compas_3d.type_column("race")
        )

    def test_dict_round_trip_without_files(self, paper_2d_dataset):
        rebuilt = dataset_from_dict(dataset_to_dict(paper_2d_dataset))
        assert np.allclose(rebuilt.scores, paper_2d_dataset.scores)

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(DatasetError):
            dataset_from_dict({"format": "something-else"})

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(DatasetError):
            dataset_from_dict({"format": "repro.dataset/v1", "name": "x"})

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_dataset_json(path)

    def test_payload_is_json_serialisable(self, paper_3d_dataset):
        json.dumps(dataset_to_dict(paper_3d_dataset))


# --------------------------------------------------------------------------- #
# 2-D index
# --------------------------------------------------------------------------- #
class TestTwoDIndexStore:
    def test_round_trip_preserves_intervals_and_counters(self, shared_two_d_index):
        _dataset, _oracle, index = shared_two_d_index
        rebuilt = two_d_index_from_dict(two_d_index_to_dict(index))
        assert rebuilt.n_exchanges == index.n_exchanges
        assert rebuilt.oracle_calls == index.oracle_calls
        assert len(rebuilt.intervals) == len(index.intervals)
        for original, copy in zip(index.intervals, rebuilt.intervals):
            assert copy.start == pytest.approx(original.start)
            assert copy.end == pytest.approx(original.end)

    def test_round_trip_answers_queries_identically(self, shared_two_d_index):
        _dataset, _oracle, index = shared_two_d_index
        rebuilt = two_d_index_from_dict(two_d_index_to_dict(index))
        query = LinearScoringFunction((0.9, 0.1))
        original_answer = index.query(query)
        rebuilt_answer = rebuilt.query(query)
        assert rebuilt_answer.satisfactory == original_answer.satisfactory
        assert rebuilt_answer.angular_distance == pytest.approx(
            original_answer.angular_distance
        )

    def test_save_and_load_index_file(self, shared_two_d_index, tmp_path):
        _dataset, _oracle, index = shared_two_d_index
        path = tmp_path / "index2d.json"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, TwoDIndex)
        assert len(loaded.intervals) == len(index.intervals)

    def test_from_dict_rejects_wrong_kind(self, shared_two_d_index):
        _dataset, _oracle, index = shared_two_d_index
        payload = two_d_index_to_dict(index)
        payload["index_kind"] = "approx"
        with pytest.raises(ConfigurationError):
            two_d_index_from_dict(payload)

    @settings(max_examples=30, deadline=None)
    @given(
        boundaries=st.lists(
            st.floats(min_value=0.0, max_value=float(HALF_PI), allow_nan=False),
            min_size=2,
            max_size=10,
            unique=True,
        )
    )
    def test_property_interval_round_trip(self, boundaries):
        values = sorted(boundaries)
        intervals = [
            AngularInterval(start, end) for start, end in zip(values[:-1], values[1:])
        ]
        index = TwoDIndex(intervals=intervals, n_exchanges=len(values), oracle_calls=7)
        rebuilt = two_d_index_from_dict(two_d_index_to_dict(index))
        assert len(rebuilt.intervals) == len(intervals)
        for original, copy in zip(intervals, rebuilt.intervals):
            assert copy.start == pytest.approx(original.start)
            assert copy.end == pytest.approx(original.end)


# --------------------------------------------------------------------------- #
# exact index
# --------------------------------------------------------------------------- #
class TestExactIndexStore:
    @pytest.fixture(scope="class")
    def exact_setup(self):
        from repro.data.synthetic import make_compas_like
        from repro.fairness.proportional import ProportionalOracle

        dataset = make_compas_like(n=25, seed=5).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=8, slack=0.10
        )
        index = SatRegions(dataset, oracle, max_hyperplanes=25).run()
        return dataset, oracle, index

    def test_round_trip_preserves_regions(self, exact_setup):
        _dataset, _oracle, index = exact_setup
        rebuilt = exact_index_from_dict(exact_index_to_dict(index))
        assert rebuilt.dimension == index.dimension
        assert rebuilt.n_regions == index.n_regions
        assert len(rebuilt.satisfactory_regions) == len(index.satisfactory_regions)
        for original, copy in zip(index.satisfactory_regions, rebuilt.satisfactory_regions):
            assert copy.representative_angles == pytest.approx(original.representative_angles)
            assert len(copy.region.half_spaces) == len(original.region.half_spaces)

    def test_round_trip_answers_queries_identically(self, exact_setup):
        dataset, oracle, index = exact_setup
        if not index.has_satisfactory_region:
            pytest.skip("constraint unsatisfiable in this draw")
        rebuilt = exact_index_from_dict(exact_index_to_dict(index))
        query = LinearScoringFunction((0.8, 0.1, 0.1))
        original = md_baseline(dataset, oracle, index, query)
        copy = md_baseline(dataset, oracle, rebuilt, query)
        assert copy.satisfactory == original.satisfactory
        assert copy.angular_distance == pytest.approx(original.angular_distance, abs=1e-6)

    def test_save_and_load_index_file(self, exact_setup, tmp_path):
        _dataset, _oracle, index = exact_setup
        path = tmp_path / "exact.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.n_regions == index.n_regions

    def test_payload_is_json_serialisable(self, exact_setup):
        _dataset, _oracle, index = exact_setup
        json.dumps(exact_index_to_dict(index))


# --------------------------------------------------------------------------- #
# approximate index
# --------------------------------------------------------------------------- #
class TestApproxIndexStore:
    def test_round_trip_preserves_assignments(
        self, shared_approx_index, shared_compas_3d, shared_race_oracle_3d
    ):
        payload = approx_index_to_dict(shared_approx_index)
        rebuilt = approx_index_from_dict(
            payload, oracle=shared_race_oracle_3d, dataset=shared_compas_3d
        )
        assert rebuilt.n_cells == shared_approx_index.n_cells
        assert rebuilt.n_marked_cells == shared_approx_index.n_marked_cells
        for original, copy in zip(shared_approx_index.assigned_angles, rebuilt.assigned_angles):
            if original is None:
                assert copy is None
            else:
                assert np.allclose(original, copy)

    def test_round_trip_answers_queries_identically(
        self, shared_approx_index, shared_compas_3d, shared_race_oracle_3d
    ):
        rebuilt = approx_index_from_dict(
            approx_index_to_dict(shared_approx_index),
            oracle=shared_race_oracle_3d,
            dataset=shared_compas_3d,
        )
        query = LinearScoringFunction((0.6, 0.2, 0.2))
        original = shared_approx_index.query(query)
        copy = rebuilt.query(query)
        assert copy.satisfactory == original.satisfactory
        assert copy.angular_distance == pytest.approx(original.angular_distance)

    def test_embedded_dataset_round_trip(self, shared_approx_index, shared_race_oracle_3d, tmp_path):
        path = tmp_path / "approx.json"
        save_index(shared_approx_index, path, include_dataset=True)
        loaded = load_index(path, oracle=shared_race_oracle_3d)
        assert loaded.n_cells == shared_approx_index.n_cells
        assert np.allclose(loaded.dataset.scores, shared_approx_index.dataset.scores)

    def test_load_without_dataset_or_embedding_fails(
        self, shared_approx_index, shared_race_oracle_3d, tmp_path
    ):
        path = tmp_path / "approx_no_ds.json"
        save_index(shared_approx_index, path, include_dataset=False)
        with pytest.raises(ConfigurationError):
            load_index(path, oracle=shared_race_oracle_3d)

    def test_load_without_oracle_fails(self, shared_approx_index, tmp_path):
        path = tmp_path / "approx.json"
        save_index(shared_approx_index, path, include_dataset=True)
        with pytest.raises(ConfigurationError):
            load_index(path)

    def test_dimension_mismatch_rejected(
        self, shared_approx_index, shared_race_oracle_3d, paper_2d_dataset
    ):
        payload = approx_index_to_dict(shared_approx_index)
        with pytest.raises(ConfigurationError):
            approx_index_from_dict(payload, oracle=shared_race_oracle_3d, dataset=paper_2d_dataset)

    def test_tampered_cell_count_rejected(
        self, shared_approx_index, shared_compas_3d, shared_race_oracle_3d
    ):
        payload = approx_index_to_dict(shared_approx_index)
        payload["assigned_angles"] = payload["assigned_angles"][:-1]
        with pytest.raises(GeometryError):
            approx_index_from_dict(
                payload, oracle=shared_race_oracle_3d, dataset=shared_compas_3d
            )

    def test_timings_preserved(self, shared_approx_index, shared_compas_3d, shared_race_oracle_3d):
        rebuilt = approx_index_from_dict(
            approx_index_to_dict(shared_approx_index),
            oracle=shared_race_oracle_3d,
            dataset=shared_compas_3d,
        )
        assert rebuilt.timings.total == pytest.approx(shared_approx_index.timings.total)

    def test_payload_is_json_serialisable(self, shared_approx_index):
        json.dumps(approx_index_to_dict(shared_approx_index, include_dataset=True))


# --------------------------------------------------------------------------- #
# file-level dispatch
# --------------------------------------------------------------------------- #
class TestLoadIndexDispatch:
    def test_rejects_non_index_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_index(path)

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("][", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_index(path)

    def test_rejects_unknown_object(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_index(object(), tmp_path / "x.json")  # type: ignore[arg-type]
