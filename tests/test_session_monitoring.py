"""Tests for interactive design sessions and index freshness monitoring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import ApproxConfig, TwoDConfig
from repro.core.monitoring import (
    FreshnessReport,
    check_approx_index_freshness,
    check_two_d_index_freshness,
    refresh_approx_index,
)
from repro.core.session import DesignSession
from repro.core.system import FairRankingDesigner
from repro.data.synthetic import make_compas_like
from repro.exceptions import ConfigurationError
from repro.fairness.oracle import CallableOracle
from repro.fairness.proportional import ProportionalOracle
from repro.ranking.scoring import LinearScoringFunction


@pytest.fixture(scope="module")
def session_designer(shared_compas_3d, shared_race_oracle_3d):
    designer = FairRankingDesigner(
        shared_compas_3d, shared_race_oracle_3d, ApproxConfig(n_cells=64, max_hyperplanes=60)
    )
    designer.preprocess()
    return designer


# --------------------------------------------------------------------------- #
# DesignSession
# --------------------------------------------------------------------------- #
class TestDesignSession:
    def test_requires_a_designer(self):
        with pytest.raises(ConfigurationError):
            DesignSession("not a designer")  # type: ignore[arg-type]

    def test_preprocesses_lazily(self, shared_compas_3d, shared_race_oracle_3d):
        designer = FairRankingDesigner(
            shared_compas_3d,
            shared_race_oracle_3d,
            ApproxConfig(n_cells=16, max_hyperplanes=30),
        )
        assert not designer.is_preprocessed
        DesignSession(designer)
        assert designer.is_preprocessed

    def test_propose_records_history_in_order(self, session_designer):
        session = DesignSession(session_designer)
        session.propose([0.5, 0.3, 0.2], note="first")
        session.propose([0.2, 0.4, 0.4])
        assert session.n_proposals == 2
        assert [record.step for record in session.history] == [1, 2]
        assert session.history[0].note == "first"

    def test_proposal_suggestions_are_satisfactory(self, session_designer):
        session = DesignSession(session_designer)
        record = session.propose([0.9, 0.05, 0.05])
        assert session_designer.oracle.evaluate_function(
            record.suggestion, session_designer.dataset
        )

    def test_accept_defaults_to_latest(self, session_designer):
        session = DesignSession(session_designer)
        session.propose([0.5, 0.3, 0.2])
        session.propose([0.3, 0.3, 0.4])
        accepted = session.accept()
        assert accepted.step == 2
        assert session.accepted_record.step == 2
        assert session.accepted_function is not None

    def test_accept_specific_step_and_reaccept(self, session_designer):
        session = DesignSession(session_designer)
        session.propose([0.5, 0.3, 0.2])
        session.propose([0.3, 0.3, 0.4])
        session.accept(step=1)
        assert session.accepted_record.step == 1
        session.accept(step=2)
        assert session.accepted_record.step == 2
        assert sum(1 for record in session.history if record.accepted) == 1

    def test_accept_without_proposals_fails(self, session_designer):
        session = DesignSession(session_designer)
        with pytest.raises(ConfigurationError):
            session.accept()

    def test_accept_out_of_range_fails(self, session_designer):
        session = DesignSession(session_designer)
        session.propose([0.5, 0.3, 0.2])
        with pytest.raises(ConfigurationError):
            session.accept(step=5)

    def test_summary_counts_and_distances(self, session_designer):
        session = DesignSession(session_designer)
        results = [
            session.propose(weights)
            for weights in ([0.5, 0.3, 0.2], [0.8, 0.1, 0.1], [0.2, 0.2, 0.6])
        ]
        summary = session.summary()
        assert summary.n_proposals == 3
        expected_satisfactory = sum(1 for record in results if record.result.satisfactory)
        assert summary.n_already_satisfactory == expected_satisfactory
        repairs = [
            record.result.angular_distance
            for record in results
            if not record.result.satisfactory
        ]
        if repairs:
            assert summary.max_repair_distance == pytest.approx(max(repairs))
            assert summary.mean_repair_distance == pytest.approx(float(np.mean(repairs)))
        else:
            assert summary.max_repair_distance == 0.0

    def test_transcript_mentions_every_step(self, session_designer):
        session = DesignSession(session_designer)
        session.propose([0.5, 0.3, 0.2])
        session.propose([0.2, 0.4, 0.4])
        session.accept()
        transcript = session.format_transcript()
        assert "step 1" in transcript and "step 2" in transcript
        assert "ACCEPTED" in transcript

    def test_empty_transcript(self, session_designer):
        assert "empty" in DesignSession(session_designer).format_transcript()

    def test_to_dict_and_save(self, session_designer, tmp_path):
        session = DesignSession(session_designer)
        session.propose([0.5, 0.3, 0.2], note="note")
        session.accept()
        payload = session.to_dict()
        assert payload["summary"]["n_proposals"] == 1
        assert payload["records"][0]["note"] == "note"
        path = tmp_path / "session.json"
        session.save(path)
        reloaded = json.loads(path.read_text(encoding="utf-8"))
        assert reloaded["summary"]["accepted_step"] == 1

    def test_works_with_two_d_designer(self, shared_two_d_index):
        dataset, oracle, _index = shared_two_d_index
        designer = FairRankingDesigner(dataset, oracle, TwoDConfig())
        session = DesignSession(designer)
        record = session.propose([0.7, 0.3])
        assert record.result.angular_distance >= 0.0


# --------------------------------------------------------------------------- #
# freshness monitoring
# --------------------------------------------------------------------------- #
class TestApproxFreshness:
    def test_fresh_on_the_indexed_dataset(self, shared_approx_index, shared_compas_3d):
        report = check_approx_index_freshness(shared_approx_index, shared_compas_3d)
        assert isinstance(report, FreshnessReport)
        assert report.is_fresh
        assert report.n_stale == 0
        assert report.fraction_stale == 0.0
        assert report.oracle_calls == report.n_checked

    def test_stale_under_an_impossible_oracle(self, shared_approx_index, shared_compas_3d):
        never = CallableOracle(lambda ordering, dataset: False, "never satisfied")
        report = check_approx_index_freshness(
            shared_approx_index, shared_compas_3d, oracle=never
        )
        assert report.n_checked > 0
        assert report.n_stale == report.n_checked
        assert not report.is_fresh
        assert report.fraction_stale == 1.0
        assert list(report.stale_indices) == sorted(report.stale_indices)

    def test_cell_subsampling_bounds_the_work(self, shared_approx_index, shared_compas_3d):
        report = check_approx_index_freshness(
            shared_approx_index, shared_compas_3d, sample_cells=5
        )
        assert report.n_checked == 5
        assert report.oracle_calls == 5

    def test_subsample_must_be_positive(self, shared_approx_index, shared_compas_3d):
        with pytest.raises(ConfigurationError):
            check_approx_index_freshness(
                shared_approx_index, shared_compas_3d, sample_cells=0
            )

    def test_dimension_mismatch_rejected(self, shared_approx_index, paper_2d_dataset):
        with pytest.raises(ConfigurationError):
            check_approx_index_freshness(shared_approx_index, paper_2d_dataset)

    def test_empty_report_fraction_is_zero(self):
        report = FreshnessReport(n_checked=0, n_stale=0, stale_indices=(), oracle_calls=0)
        assert report.fraction_stale == 0.0


class TestTwoDFreshness:
    def test_fresh_on_the_indexed_dataset(self, shared_two_d_index):
        dataset, oracle, index = shared_two_d_index
        report = check_two_d_index_freshness(index, dataset, oracle)
        assert report.n_checked == len(index.intervals)
        assert report.is_fresh

    def test_stale_under_an_impossible_oracle(self, shared_two_d_index):
        dataset, _oracle, index = shared_two_d_index
        never = CallableOracle(lambda ordering, data: False, "never satisfied")
        report = check_two_d_index_freshness(index, dataset, never)
        assert report.n_stale == report.n_checked

    def test_requires_two_attributes(self, shared_two_d_index, shared_compas_3d):
        _dataset, oracle, index = shared_two_d_index
        with pytest.raises(ConfigurationError):
            check_two_d_index_freshness(index, shared_compas_3d, oracle)

    def test_requires_positive_probe_count(self, shared_two_d_index):
        dataset, oracle, index = shared_two_d_index
        with pytest.raises(ConfigurationError):
            check_two_d_index_freshness(index, dataset, oracle, probes_per_interval=0)


class TestRefresh:
    def test_refresh_keeps_the_partition_and_is_fresh_on_new_data(
        self, shared_approx_index, shared_race_oracle_3d
    ):
        new_dataset = make_compas_like(n=60, seed=11).project(
            list(shared_approx_index.dataset.scoring_attributes)
        )
        oracle = ProportionalOracle.at_most_share_plus_slack(
            new_dataset, "race", "African-American", k=0.3, slack=0.10
        )
        refreshed = refresh_approx_index(
            shared_approx_index, new_dataset, oracle=oracle, max_hyperplanes=40
        )
        assert refreshed.partition is shared_approx_index.partition
        assert refreshed.n_cells == shared_approx_index.n_cells
        report = check_approx_index_freshness(refreshed, new_dataset, oracle=oracle)
        assert report.is_fresh

    def test_refresh_rejects_dimension_mismatch(self, shared_approx_index, paper_2d_dataset):
        with pytest.raises(ConfigurationError):
            refresh_approx_index(shared_approx_index, paper_2d_dataset)

    def test_refreshed_index_answers_queries(self, shared_approx_index, shared_race_oracle_3d):
        new_dataset = make_compas_like(n=60, seed=13).project(
            list(shared_approx_index.dataset.scoring_attributes)
        )
        refreshed = refresh_approx_index(
            shared_approx_index, new_dataset, max_hyperplanes=40
        )
        answer = refreshed.query(LinearScoringFunction((0.5, 0.3, 0.2)))
        assert answer.angular_distance >= 0.0
