"""Tests for fairness oracles, composites, measures and baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import NoSatisfactoryFunctionError, OracleError
from repro.fairness.baselines import constrained_topk, greedy_fair_rerank
from repro.fairness.composite import AndOracle, NotOracle, OrOracle
from repro.fairness.measures import (
    exposure_ratio,
    group_share_at_k,
    rkl_measure,
    rnd_measure,
    selection_rate_ratio,
)
from repro.fairness.multi_attribute import MultiAttributeOracle
from repro.fairness.oracle import CallableOracle, CountingOracle
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle
from repro.ranking.scoring import LinearScoringFunction


@pytest.fixture
def group_dataset() -> Dataset:
    """Ten items; the five highest scorers on attribute a are all group 'p'."""
    scores = np.array(
        [
            [10.0, 1.0],
            [9.0, 2.0],
            [8.0, 3.0],
            [7.0, 4.0],
            [6.0, 5.0],
            [5.0, 6.0],
            [4.0, 7.0],
            [3.0, 8.0],
            [2.0, 9.0],
            [1.0, 10.0],
        ]
    )
    groups = np.array(["p", "p", "p", "p", "p", "q", "q", "q", "q", "q"])
    sexes = np.array(["m", "m", "f", "m", "m", "f", "f", "m", "f", "f"])
    return Dataset(
        scores=scores,
        scoring_attributes=["a", "b"],
        types={"g": groups, "sex": sexes},
    )


def descending_a(dataset: Dataset) -> np.ndarray:
    return LinearScoringFunction((1.0, 0.0)).order(dataset)


def descending_b(dataset: Dataset) -> np.ndarray:
    return LinearScoringFunction((0.0, 1.0)).order(dataset)


class TestProportionalOracle:
    def test_max_fraction_violated(self, group_dataset):
        oracle = ProportionalOracle("g", "p", k=4, max_fraction=0.5)
        assert not oracle.is_satisfactory(descending_a(group_dataset), group_dataset)

    def test_max_fraction_satisfied(self, group_dataset):
        oracle = ProportionalOracle("g", "p", k=4, max_fraction=0.5)
        ordering = np.array([0, 5, 1, 6, 2, 7, 3, 8, 4, 9])
        assert oracle.is_satisfactory(ordering, group_dataset)

    def test_min_fraction(self, group_dataset):
        oracle = ProportionalOracle("g", "q", k=4, min_fraction=0.25)
        assert not oracle.is_satisfactory(descending_a(group_dataset), group_dataset)
        assert oracle.is_satisfactory(descending_b(group_dataset), group_dataset)

    def test_fractional_k(self, group_dataset):
        oracle = ProportionalOracle("g", "p", k=0.4, max_fraction=0.5)
        assert not oracle.is_satisfactory(descending_a(group_dataset), group_dataset)

    def test_both_bounds(self, group_dataset):
        oracle = ProportionalOracle("g", "p", k=4, min_fraction=0.25, max_fraction=0.75)
        ordering = np.array([0, 5, 1, 6, 2, 7, 3, 8, 4, 9])
        assert oracle.is_satisfactory(ordering, group_dataset)

    def test_requires_some_bound(self):
        with pytest.raises(OracleError):
            ProportionalOracle("g", "p", k=4)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(OracleError):
            ProportionalOracle("g", "p", k=4, min_fraction=0.8, max_fraction=0.2)

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(OracleError):
            ProportionalOracle("g", "p", k=4, max_fraction=1.2)

    def test_share_plus_slack_constructor(self, group_dataset):
        oracle = ProportionalOracle.at_most_share_plus_slack(
            group_dataset, "g", "p", k=4, slack=0.10
        )
        assert oracle.max_fraction == pytest.approx(0.60)

    def test_share_minus_slack_constructor(self, group_dataset):
        oracle = ProportionalOracle.at_least_share_minus_slack(
            group_dataset, "g", "q", k=4, slack=0.10
        )
        assert oracle.min_fraction == pytest.approx(0.40)

    def test_describe_mentions_attribute(self):
        oracle = ProportionalOracle("g", "p", k=4, max_fraction=0.5)
        assert "g" in oracle.describe()

    def test_evaluate_function(self, group_dataset):
        oracle = ProportionalOracle("g", "p", k=4, max_fraction=0.5)
        assert not oracle.evaluate_function(LinearScoringFunction((1.0, 0.0)), group_dataset)
        assert oracle.evaluate_function(LinearScoringFunction((0.0, 1.0)), group_dataset)


class TestTopKGroupBoundOracle:
    def test_max_count(self, group_dataset):
        oracle = TopKGroupBoundOracle("g", "p", k=4, max_count=2)
        assert not oracle.is_satisfactory(descending_a(group_dataset), group_dataset)
        assert oracle.is_satisfactory(descending_b(group_dataset), group_dataset)

    def test_min_count(self, group_dataset):
        oracle = TopKGroupBoundOracle("g", "p", k=4, min_count=1)
        assert oracle.is_satisfactory(descending_a(group_dataset), group_dataset)
        assert not oracle.is_satisfactory(descending_b(group_dataset), group_dataset)

    def test_validation(self):
        with pytest.raises(OracleError):
            TopKGroupBoundOracle("g", "p", k=4)
        with pytest.raises(OracleError):
            TopKGroupBoundOracle("g", "p", k=4, min_count=5, max_count=2)
        with pytest.raises(OracleError):
            TopKGroupBoundOracle("g", "p", k=4, max_count=-1)


class TestCompositesAndWrappers:
    def test_and_oracle(self, group_dataset):
        both = AndOracle(
            [
                TopKGroupBoundOracle("g", "p", k=4, max_count=3),
                TopKGroupBoundOracle("sex", "m", k=4, max_count=3),
            ]
        )
        assert not both.is_satisfactory(descending_a(group_dataset), group_dataset)
        assert both.is_satisfactory(descending_b(group_dataset), group_dataset)

    def test_or_oracle(self, group_dataset):
        either = OrOracle(
            [
                TopKGroupBoundOracle("g", "p", k=4, max_count=0),
                TopKGroupBoundOracle("g", "p", k=4, min_count=4),
            ]
        )
        assert either.is_satisfactory(descending_a(group_dataset), group_dataset)
        assert not either.is_satisfactory(
            np.array([0, 5, 6, 7, 1, 2, 3, 4, 8, 9]), group_dataset
        )

    def test_not_oracle(self, group_dataset):
        oracle = TopKGroupBoundOracle("g", "p", k=4, max_count=2)
        negated = NotOracle(oracle)
        ordering = descending_a(group_dataset)
        assert oracle.is_satisfactory(ordering, group_dataset) != negated.is_satisfactory(
            ordering, group_dataset
        )

    def test_composites_validate_children(self):
        with pytest.raises(OracleError):
            AndOracle([])
        with pytest.raises(OracleError):
            OrOracle([lambda ordering, dataset: True])
        with pytest.raises(OracleError):
            NotOracle("not an oracle")

    def test_callable_oracle(self, group_dataset):
        oracle = CallableOracle(lambda ordering, dataset: bool(ordering[0] == 0), "first is item 0")
        assert oracle.is_satisfactory(descending_a(group_dataset), group_dataset)
        assert not oracle.is_satisfactory(descending_b(group_dataset), group_dataset)
        assert oracle.describe() == "first is item 0"

    def test_callable_oracle_must_return_bool(self, group_dataset):
        oracle = CallableOracle(lambda ordering, dataset: "yes")
        with pytest.raises(OracleError):
            oracle.is_satisfactory(descending_a(group_dataset), group_dataset)

    def test_counting_oracle(self, group_dataset):
        inner = TopKGroupBoundOracle("g", "p", k=4, max_count=2)
        counting = CountingOracle(inner)
        ordering = descending_a(group_dataset)
        counting.is_satisfactory(ordering, group_dataset)
        counting.is_satisfactory(ordering, group_dataset)
        assert counting.calls == 2
        counting.reset()
        assert counting.calls == 0

    def test_multi_attribute_oracle_from_triples(self, group_dataset):
        oracle = MultiAttributeOracle([("g", "p", 3), ("sex", "m", 3)], k=4)
        assert not oracle.is_satisfactory(descending_a(group_dataset), group_dataset)
        assert oracle.is_satisfactory(descending_b(group_dataset), group_dataset)

    def test_multi_attribute_from_dataset_shares(self, group_dataset):
        oracle = MultiAttributeOracle.from_dataset_shares(
            group_dataset, {"g": ["p"], "sex": ["m"]}, k=4, slack=0.10
        )
        assert len(oracle.children) == 2
        assert not oracle.is_satisfactory(descending_a(group_dataset), group_dataset)

    def test_multi_attribute_requires_k_for_triples(self):
        with pytest.raises(OracleError):
            MultiAttributeOracle([("g", "p", 3)])

    def test_multi_attribute_rejects_garbage(self):
        with pytest.raises(OracleError):
            MultiAttributeOracle(["nonsense"], k=4)


class TestMeasures:
    def test_group_share(self, group_dataset):
        share = group_share_at_k(group_dataset, descending_a(group_dataset), "g", "p", 4)
        assert share == pytest.approx(1.0)

    def test_selection_rate_ratio_extremes(self, group_dataset):
        ratio = selection_rate_ratio(group_dataset, descending_a(group_dataset), "g", "q", 5)
        assert ratio == pytest.approx(0.0)
        ratio_fair = selection_rate_ratio(
            group_dataset, np.array([0, 5, 1, 6, 2, 7, 3, 8, 4, 9]), "g", "q", 4
        )
        assert ratio_fair == pytest.approx(1.0)

    def test_selection_rate_ratio_requires_two_groups(self, group_dataset):
        with pytest.raises(OracleError):
            selection_rate_ratio(group_dataset, descending_a(group_dataset), "g", "missing", 4)

    def test_rnd_zero_for_proportional_ranking(self, group_dataset):
        interleaved = np.array([0, 5, 1, 6, 2, 7, 3, 8, 4, 9])
        assert rnd_measure(group_dataset, interleaved, "g", "p", step=2) == pytest.approx(
            0.0, abs=0.15
        )

    def test_rnd_larger_for_segregated_ranking(self, group_dataset):
        segregated = descending_a(group_dataset)
        interleaved = np.array([0, 5, 1, 6, 2, 7, 3, 8, 4, 9])
        assert rnd_measure(group_dataset, segregated, "g", "p", step=2) > rnd_measure(
            group_dataset, interleaved, "g", "p", step=2
        )

    def test_rnd_bounded(self, group_dataset):
        value = rnd_measure(group_dataset, descending_a(group_dataset), "g", "p", step=2)
        assert 0.0 <= value <= 1.0

    def test_rkl_ranks_orderings_consistently(self, group_dataset):
        segregated = descending_a(group_dataset)
        interleaved = np.array([0, 5, 1, 6, 2, 7, 3, 8, 4, 9])
        assert rkl_measure(group_dataset, segregated, "g", step=2) > rkl_measure(
            group_dataset, interleaved, "g", step=2
        )

    def test_exposure_ratio_favors_top_group(self, group_dataset):
        ratio = exposure_ratio(group_dataset, descending_a(group_dataset), "g", "p")
        assert ratio > 1.0

    def test_exposure_ratio_requires_two_groups(self, group_dataset):
        with pytest.raises(OracleError):
            exposure_ratio(group_dataset, descending_a(group_dataset), "g", "missing")


class TestBaselines:
    def test_greedy_rerank_meets_prefix_constraint(self, group_dataset):
        ordering = descending_a(group_dataset)
        reranked = greedy_fair_rerank(group_dataset, ordering, "g", "q", k=6, min_protected_fraction=0.5)
        groups = group_dataset.type_column("g")
        for prefix in range(1, 7):
            count = int(np.sum(groups[reranked[:prefix]] == "q"))
            assert count >= int(np.ceil(0.5 * prefix - 1e-9))

    def test_greedy_rerank_is_a_permutation(self, group_dataset):
        ordering = descending_a(group_dataset)
        reranked = greedy_fair_rerank(group_dataset, ordering, "g", "q", k=4, min_protected_fraction=0.5)
        assert sorted(reranked.tolist()) == list(range(10))

    def test_greedy_rerank_impossible_constraint(self, group_dataset):
        with pytest.raises(NoSatisfactoryFunctionError):
            greedy_fair_rerank(
                group_dataset, descending_a(group_dataset), "sex", "f", k=10, min_protected_fraction=0.9
            )

    def test_greedy_rerank_validates_fraction(self, group_dataset):
        with pytest.raises(OracleError):
            greedy_fair_rerank(
                group_dataset, descending_a(group_dataset), "g", "q", k=4, min_protected_fraction=1.5
            )

    def test_constrained_topk_respects_bounds(self, group_dataset):
        scores = group_dataset.scores[:, 0]
        selected = constrained_topk(group_dataset, scores, k=4, max_counts={("g", "p"): 2})
        groups = group_dataset.type_column("g")
        assert int(np.sum(groups[selected] == "p")) <= 2
        assert len(selected) == 4

    def test_constrained_topk_prefers_high_scores(self, group_dataset):
        scores = group_dataset.scores[:, 0]
        selected = constrained_topk(group_dataset, scores, k=4, max_counts={("g", "p"): 2})
        assert 0 in selected and 1 in selected  # two best protected items kept

    def test_constrained_topk_infeasible(self, group_dataset):
        scores = group_dataset.scores[:, 0]
        with pytest.raises(NoSatisfactoryFunctionError):
            constrained_topk(
                group_dataset, scores, k=8, max_counts={("g", "p"): 1, ("g", "q"): 1}
            )

    def test_constrained_topk_validates_scores(self, group_dataset):
        with pytest.raises(OracleError):
            constrained_topk(group_dataset, np.array([1.0, 2.0]), k=2, max_counts={})
