"""Shared fixtures for the test suite.

The fixtures build deliberately small datasets so that even the exact
multi-dimensional algorithms (which are polynomial but with a large exponent)
run in a fraction of a second per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.synthetic import make_compas_like
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle


@pytest.fixture
def paper_2d_dataset() -> Dataset:
    """The 5-point 2-D dataset of the paper's Figure 3."""
    scores = np.array(
        [
            [1.0, 3.5],
            [1.5, 3.1],
            [1.91, 2.3],
            [2.3, 1.8],
            [3.2, 0.9],
        ]
    )
    types = {"color": np.array(["blue", "orange", "orange", "blue", "orange"])}
    return Dataset(scores=scores, scoring_attributes=["x", "y"], types=types, name="figure3")


@pytest.fixture
def paper_3d_dataset() -> Dataset:
    """The 4-point 3-D dataset of the paper's Figure 7."""
    scores = np.array(
        [
            [1.0, 2.0, 3.0],
            [2.0, 4.0, 1.0],
            [5.3, 1.0, 6.0],
            [3.0, 7.2, 2.0],
        ]
    )
    types = {"group": np.array(["a", "b", "a", "b"])}
    return Dataset(scores=scores, scoring_attributes=["x", "y", "z"], types=types, name="figure7")


@pytest.fixture
def small_compas_2d() -> Dataset:
    """A small COMPAS-like dataset restricted to two scoring attributes."""
    return make_compas_like(n=80, seed=3).project(["c_days_from_compas", "juv_other_count"])


@pytest.fixture
def small_compas_3d() -> Dataset:
    """A small COMPAS-like dataset restricted to three scoring attributes."""
    return make_compas_like(n=40, seed=3).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )


@pytest.fixture
def race_oracle_2d(small_compas_2d) -> ProportionalOracle:
    """The paper's default FM1 constraint on the small 2-D dataset."""
    return ProportionalOracle.at_most_share_plus_slack(
        small_compas_2d, "race", "African-American", k=0.3, slack=0.10
    )


@pytest.fixture
def race_oracle_3d(small_compas_3d) -> ProportionalOracle:
    """The paper's default FM1 constraint on the small 3-D dataset."""
    return ProportionalOracle.at_most_share_plus_slack(
        small_compas_3d, "race", "African-American", k=0.3, slack=0.10
    )


@pytest.fixture
def balanced_topk_oracle() -> TopKGroupBoundOracle:
    """The Figure 1 example constraint: at most 2 orange items in the top 4."""
    return TopKGroupBoundOracle("color", "orange", k=4, max_count=2)


@pytest.fixture(scope="session")
def shared_compas_3d() -> Dataset:
    """Session-scoped small COMPAS-like 3-D dataset for tests that share an index."""
    return make_compas_like(n=60, seed=7).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )


@pytest.fixture(scope="session")
def shared_race_oracle_3d(shared_compas_3d) -> ProportionalOracle:
    """FM1 constraint matching :func:`shared_compas_3d`."""
    return ProportionalOracle.at_most_share_plus_slack(
        shared_compas_3d, "race", "African-American", k=0.3, slack=0.10
    )


@pytest.fixture(scope="session")
def shared_approx_index(shared_compas_3d, shared_race_oracle_3d):
    """A small preprocessed approximate index, built once for the whole test session."""
    from repro.core.approx import ApproximatePreprocessor

    return ApproximatePreprocessor(
        shared_compas_3d, shared_race_oracle_3d, n_cells=64, max_hyperplanes=60
    ).run()


@pytest.fixture(scope="session")
def shared_two_d_index(shared_compas_3d, shared_race_oracle_3d):
    """A small preprocessed 2-D index (first two attributes), built once per session."""
    from repro.core.two_dim import TwoDRaySweep
    from repro.fairness.proportional import ProportionalOracle as _Oracle

    dataset = shared_compas_3d.project(["c_days_from_compas", "juv_other_count"])
    oracle = _Oracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    return dataset, oracle, TwoDRaySweep(dataset, oracle).run()
