"""Tests for the unified query-engine API.

Covers the engine registry and capabilities, the typed config dataclasses,
the deprecation shim of the :class:`FairRankingDesigner` constructor, the
batched ``suggest_many`` identity guarantee on all three engines (the
``perf_smoke``-marked equivalence tests), and the save/load persistence
round-trips — including a sampled exact-mode designer whose restored answers
must be bit-identical to the pre-save ones.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.engine import (
    ApproxConfig,
    ApproxEngine,
    ExactConfig,
    ExactEngine,
    QueryEngine,
    TwoDConfig,
    TwoDEngine,
    available_engines,
    create_engine,
    engine_from_payload,
    engine_name_for_config,
    get_engine,
)
from repro.core.system import FairRankingDesigner
from repro.data.synthetic import make_compas_like
from repro.exceptions import ConfigurationError, NotPreprocessedError
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle
from repro.geometry.partition import AnglePartition, UniformGridPartition, locate_cells
from repro.io.index_store import load_engine, save_engine, save_index


def _random_queries(q: int, d: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(size=(q, d))) + 1e-9


@pytest.fixture(scope="module")
def two_d_designer():
    dataset = make_compas_like(n=200, seed=7).project(
        ["c_days_from_compas", "juv_other_count"]
    )
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.12
    )
    designer = FairRankingDesigner(dataset, oracle, TwoDConfig()).preprocess()
    if not designer.index.has_satisfactory_region:
        pytest.skip("constraint unsatisfiable for this draw")
    return designer


@pytest.fixture(scope="module")
def md_dataset_oracle():
    dataset = make_compas_like(n=25, seed=26).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )
    oracle = TopKGroupBoundOracle("race", "African-American", k=8, max_count=5)
    return dataset, oracle


@pytest.fixture(scope="module")
def approx_designer(md_dataset_oracle):
    dataset, oracle = md_dataset_oracle
    return FairRankingDesigner(
        dataset, oracle, ApproxConfig(n_cells=25, max_hyperplanes=25)
    ).preprocess()


@pytest.fixture(scope="module")
def exact_designer(md_dataset_oracle):
    dataset, oracle = md_dataset_oracle
    return FairRankingDesigner(
        dataset, oracle, ExactConfig(max_hyperplanes=20)
    ).preprocess()


# --------------------------------------------------------------------------- #
# registry and capabilities
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_engines_are_registered(self):
        assert set(available_engines()) == {
            "2d",
            "exact",
            "approximate",
            "fallback",
            "instrumented",
            "pool",
        }

    def test_get_engine_dispatches_by_name(self):
        assert get_engine("2d") is TwoDEngine
        assert get_engine("exact") is ExactEngine
        assert get_engine("approximate") is ApproxEngine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            get_engine("bogus")

    def test_config_types_map_to_engine_names(self):
        assert engine_name_for_config(TwoDConfig()) == "2d"
        assert engine_name_for_config(ExactConfig()) == "exact"
        assert engine_name_for_config(ApproxConfig()) == "approximate"
        with pytest.raises(ConfigurationError):
            engine_name_for_config(object())  # type: ignore[arg-type]

    def test_capabilities(self):
        two_d = TwoDEngine.capabilities()
        assert two_d.exact and two_d.batched
        assert two_d.supports_dimension(2) and not two_d.supports_dimension(3)
        exact = ExactEngine.capabilities()
        assert exact.exact and not exact.batched
        assert exact.supports_dimension(5) and not exact.supports_dimension(2)
        approx = ApproxEngine.capabilities()
        assert not approx.exact and approx.batched
        assert approx.supports_dimension(3)

    def test_engines_satisfy_the_protocol(self, two_d_designer, exact_designer, approx_designer):
        for designer in (two_d_designer, exact_designer, approx_designer):
            assert isinstance(designer.engine, QueryEngine)

    def test_create_engine_validates_dimensionality(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        with pytest.raises(ConfigurationError):
            create_engine(dataset, oracle, TwoDConfig())

    def test_engine_rejects_mismatched_config(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        with pytest.raises(ConfigurationError):
            ExactEngine(dataset, oracle, ApproxConfig())

    def test_approx_config_validates_fields(self):
        with pytest.raises(ConfigurationError):
            ApproxConfig(n_cells=0)
        with pytest.raises(ConfigurationError):
            ApproxConfig(partition="weird")

    def test_hyperplane_method_validated(self):
        with pytest.raises(ConfigurationError):
            ExactConfig(hyperplane_method="turbo")
        with pytest.raises(ConfigurationError):
            ApproxConfig(hyperplane_method="turbo")
        assert ExactConfig().hyperplane_method == "batched"
        assert ApproxConfig().hyperplane_method == "batched"


@pytest.mark.perf_smoke
class TestHyperplaneMethodEquivalence:
    """Both d >= 3 engines must preprocess identically under either method."""

    def test_exact_engine_batched_matches_scalar(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        batched = FairRankingDesigner(
            dataset, oracle, ExactConfig(max_hyperplanes=20)
        ).preprocess()
        scalar = FairRankingDesigner(
            dataset, oracle, ExactConfig(max_hyperplanes=20, hyperplane_method="scalar")
        ).preprocess()
        assert batched.index.n_hyperplanes == scalar.index.n_hyperplanes
        assert batched.index.oracle_calls == scalar.index.oracle_calls
        assert [r.representative_angles for r in batched.index.satisfactory_regions] == [
            r.representative_angles for r in scalar.index.satisfactory_regions
        ]
        queries = _random_queries(4, 3, seed=2)
        assert batched.suggest_many(queries) == scalar.suggest_many(queries)

    def test_approx_engine_batched_matches_scalar(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        batched = FairRankingDesigner(
            dataset, oracle, ApproxConfig(n_cells=25, max_hyperplanes=25)
        ).preprocess()
        scalar = FairRankingDesigner(
            dataset,
            oracle,
            ApproxConfig(n_cells=25, max_hyperplanes=25, hyperplane_method="scalar"),
        ).preprocess()
        assert batched.index.oracle_calls == scalar.index.oracle_calls
        assert batched.index.marked == scalar.index.marked
        batched_angles = batched.index.assigned_angles
        scalar_angles = scalar.index.assigned_angles
        assert len(batched_angles) == len(scalar_angles)
        for left, right in zip(batched_angles, scalar_angles):
            assert (left is None) == (right is None)
            if left is not None:
                assert np.array_equal(left, right)
        queries = _random_queries(4, 3, seed=3)
        assert batched.suggest_many(queries) == scalar.suggest_many(queries)


# --------------------------------------------------------------------------- #
# the facade and the deprecation shim
# --------------------------------------------------------------------------- #
class TestFacade:
    def test_plain_construction_does_not_warn(self, two_d_designer):
        dataset, oracle = two_d_designer.dataset, two_d_designer.oracle
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            designer = FairRankingDesigner(dataset, oracle)
        assert designer.mode == "2d"

    def test_config_construction_does_not_warn(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            designer = FairRankingDesigner(dataset, oracle, ApproxConfig(n_cells=9))
        assert designer.mode == "approximate"
        assert designer.config.n_cells == 9

    def test_legacy_kwargs_warn_but_work(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        with pytest.warns(DeprecationWarning):
            designer = FairRankingDesigner(dataset, oracle, n_cells=16, max_hyperplanes=10)
        assert designer.mode == "approximate"
        assert designer.config == ApproxConfig(n_cells=16, max_hyperplanes=10)

    def test_legacy_mode_exact_maps_to_exact_config(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        with pytest.warns(DeprecationWarning):
            designer = FairRankingDesigner(
                dataset, oracle, mode="exact", max_hyperplanes=20, sample_size=10
            )
        assert designer.mode == "exact"
        assert designer.config == ExactConfig(max_hyperplanes=20, sample_size=10)

    def test_config_and_legacy_kwargs_together_rejected(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        with pytest.raises(ConfigurationError):
            FairRankingDesigner(dataset, oracle, ApproxConfig(), n_cells=16)

    def test_suggest_dispatches_without_isinstance_asserts(self, approx_designer):
        # Real dispatch: the engine method, not an assert-guarded branch in
        # the facade, answers the query (so `python -O` cannot mis-dispatch).
        result = approx_designer.suggest([0.4, 0.3, 0.3])
        assert result.function.dimension == 3
        assert type(approx_designer.engine).suggest is not type(
            approx_designer.engine
        ).suggest_many

    def test_capabilities_exposed_on_facade(self, exact_designer):
        assert exact_designer.capabilities().name == "exact"

    def test_index_requires_preprocess(self, md_dataset_oracle):
        dataset, oracle = md_dataset_oracle
        designer = FairRankingDesigner(dataset, oracle, ApproxConfig(n_cells=9))
        with pytest.raises(NotPreprocessedError):
            _ = designer.index


# --------------------------------------------------------------------------- #
# batched answering: suggest_many == looped suggest, on every engine
# --------------------------------------------------------------------------- #
@pytest.mark.perf_smoke
class TestSuggestManyEquivalence:
    def test_two_d_batch_matches_loop(self, two_d_designer):
        queries = _random_queries(64, 2, seed=1)
        batched = two_d_designer.suggest_many(queries)
        looped = [two_d_designer.suggest(row) for row in queries]
        assert batched == looped

    def test_approx_batch_matches_loop(self, approx_designer):
        queries = _random_queries(24, 3, seed=2)
        batched = approx_designer.suggest_many(queries)
        looped = [approx_designer.suggest(row) for row in queries]
        assert batched == looped

    def test_exact_batch_matches_loop(self, exact_designer):
        queries = _random_queries(4, 3, seed=3)
        batched = exact_designer.suggest_many(queries)
        looped = [exact_designer.suggest(row) for row in queries]
        assert batched == looped

    def test_two_d_batch_suggestions_are_bit_identical(self, two_d_designer):
        queries = _random_queries(64, 2, seed=4)
        for batched, looped in zip(
            two_d_designer.suggest_many(queries),
            [two_d_designer.suggest(row) for row in queries],
        ):
            assert batched.function.weights == looped.function.weights
            assert batched.angular_distance == looped.angular_distance
            assert batched.satisfactory == looped.satisfactory

    def test_shape_validation(self, two_d_designer):
        with pytest.raises(ConfigurationError):
            two_d_designer.suggest_many(np.ones((4, 3)))
        with pytest.raises(ConfigurationError):
            two_d_designer.suggest_many(np.ones(4))


class TestLocateCells:
    def test_uniform_grid_matches_scalar_locate(self):
        partition = UniformGridPartition(dimension=2, n_cells=49)
        angles = _random_queries(100, 3, seed=5)
        matrix = np.stack([np.clip(row[:2], 0.0, np.pi / 2) for row in angles])
        batched = locate_cells(partition, matrix)
        assert batched.tolist() == [partition.locate(row) for row in matrix]

    def test_angle_partition_fallback_matches_scalar_locate(self):
        partition = AnglePartition(dimension=2, n_cells=30)
        rng = np.random.default_rng(6)
        matrix = rng.uniform(0.0, np.pi / 2, size=(50, 2))
        batched = locate_cells(partition, matrix)
        assert batched.tolist() == [partition.locate(row) for row in matrix]


# --------------------------------------------------------------------------- #
# persistence round-trips
# --------------------------------------------------------------------------- #
class TestPersistence:
    def test_two_d_round_trip_is_bit_identical(self, two_d_designer, tmp_path):
        path = tmp_path / "engine.json"
        two_d_designer.save(path)
        loaded = FairRankingDesigner.load(path, two_d_designer.oracle)
        assert loaded.mode == "2d"
        assert loaded.is_preprocessed
        queries = _random_queries(32, 2, seed=7)
        assert loaded.suggest_many(queries) == two_d_designer.suggest_many(queries)

    def test_approx_round_trip_is_bit_identical(self, approx_designer, tmp_path):
        path = tmp_path / "engine.json"
        approx_designer.save(path)
        loaded = FairRankingDesigner.load(path, approx_designer.oracle)
        assert loaded.mode == "approximate"
        assert loaded.config == approx_designer.config
        queries = _random_queries(16, 3, seed=8)
        assert loaded.suggest_many(queries) == approx_designer.suggest_many(queries)

    def test_exact_round_trip_is_bit_identical(self, exact_designer, tmp_path):
        path = tmp_path / "engine.json"
        exact_designer.save(path)
        loaded = FairRankingDesigner.load(path, exact_designer.oracle)
        assert loaded.mode == "exact"
        queries = _random_queries(3, 3, seed=9)
        assert loaded.suggest_many(queries) == exact_designer.suggest_many(queries)

    def test_sampled_exact_round_trip_restores_the_sample(self, tmp_path):
        dataset = make_compas_like(n=60, seed=5).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=10, max_count=7)
        designer = FairRankingDesigner(
            dataset, oracle, ExactConfig(max_hyperplanes=20, sample_size=20)
        ).preprocess()
        path = tmp_path / "engine.json"
        designer.save(path)
        loaded = FairRankingDesigner.load(path, oracle)
        # The restored preprocessing dataset is the 20-item sample...
        assert loaded.dataset.n_items == 20
        assert np.array_equal(
            loaded.engine.preprocessing_dataset.scores,
            designer.engine.preprocessing_dataset.scores,
        )
        # ...so the loaded designer answers a query batch bit-identically
        # without re-preprocessing.
        queries = _random_queries(4, 3, seed=10)
        before = designer.suggest_many(queries)
        after = loaded.suggest_many(queries)
        assert before == after
        for first, second in zip(before, after):
            assert first.function.weights == second.function.weights
            assert first.angular_distance == second.angular_distance

    def test_engine_payload_round_trip(self, two_d_designer):
        payload = two_d_designer.engine.to_payload()
        rebuilt = engine_from_payload(payload, two_d_designer.oracle)
        assert rebuilt.name == "2d"
        assert rebuilt.config == two_d_designer.config

    def test_unknown_config_keys_warn_but_load(self, two_d_designer):
        payload = two_d_designer.engine.to_payload()
        payload["config"]["future_knob"] = 7
        payload["config"]["another_knob"] = "x"
        with pytest.warns(UserWarning, match="another_knob, future_knob"):
            rebuilt = engine_from_payload(payload, two_d_designer.oracle)
        assert rebuilt.config == two_d_designer.config

    def test_known_config_keys_do_not_warn(self, two_d_designer):
        payload = two_d_designer.engine.to_payload()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine_from_payload(payload, two_d_designer.oracle)

    def test_save_requires_preprocessing(self, md_dataset_oracle, tmp_path):
        dataset, oracle = md_dataset_oracle
        designer = FairRankingDesigner(dataset, oracle, ApproxConfig(n_cells=9))
        with pytest.raises(NotPreprocessedError):
            designer.save(tmp_path / "engine.json")

    def test_load_rejects_bare_index_files(self, two_d_designer, tmp_path):
        path = tmp_path / "index.json"
        save_index(two_d_designer.index, path)
        with pytest.raises(ConfigurationError):
            load_engine(path, two_d_designer.oracle)

    def test_load_rejects_garbage(self, tmp_path, two_d_designer):
        path = tmp_path / "garbage.json"
        path.write_text("{\"format\": \"nope\"}", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_engine(path, two_d_designer.oracle)
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_engine(path, two_d_designer.oracle)

    def test_save_engine_load_engine_helpers(self, approx_designer, tmp_path):
        path = tmp_path / "engine.json"
        save_engine(approx_designer.engine, path)
        engine = load_engine(path, approx_designer.oracle)
        assert engine.name == "approximate"
        queries = _random_queries(8, 3, seed=11)
        assert engine.suggest_many(queries) == approx_designer.suggest_many(queries)


# --------------------------------------------------------------------------- #
# session integration
# --------------------------------------------------------------------------- #
class TestSessionBatch:
    def test_propose_many_records_each_query(self, two_d_designer):
        from repro.core.session import DesignSession

        session = DesignSession(two_d_designer)
        queries = _random_queries(5, 2, seed=12)
        records = session.propose_many(queries, note="batch")
        assert [record.step for record in records] == [1, 2, 3, 4, 5]
        assert session.n_proposals == 5
        looped = [two_d_designer.suggest(row) for row in queries]
        assert [record.result for record in records] == looped
        payload = session.to_dict()
        assert payload["mode"] == "2d"
        assert "config" in payload
