"""Tests for the prefix-fairness oracles and the pairwise fairness measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.pairwise import (
    mean_rank_gap,
    median_rank_gap,
    pairwise_parity_gap,
    protected_above_rate,
    rank_biserial_correlation,
)
from repro.fairness.prefix import MinimumAtEveryPrefixOracle, PrefixProportionalOracle
from repro.fairness.proportional import ProportionalOracle


def two_group_dataset(labels: list[str]) -> Dataset:
    """A dataset whose items score by their index, with the given group labels."""
    n = len(labels)
    scores = np.column_stack([np.arange(n, dtype=float) + 1.0, np.ones(n)])
    return Dataset(scores, ["value", "constant"], types={"group": labels})


def identity_ordering(dataset: Dataset) -> np.ndarray:
    return np.arange(dataset.n_items)


# --------------------------------------------------------------------------- #
# PrefixProportionalOracle
# --------------------------------------------------------------------------- #
class TestPrefixProportionalOracle:
    def test_requires_some_bound(self):
        with pytest.raises(OracleError):
            PrefixProportionalOracle("group", "a", k=4)

    def test_rejects_invalid_fractions(self):
        with pytest.raises(OracleError):
            PrefixProportionalOracle("group", "a", k=4, min_fraction=-0.1)
        with pytest.raises(OracleError):
            PrefixProportionalOracle("group", "a", k=4, max_fraction=1.5)
        with pytest.raises(OracleError):
            PrefixProportionalOracle("group", "a", k=4, min_fraction=0.8, max_fraction=0.2)

    def test_min_fraction_violated_by_late_protected_items(self):
        # Protected items are all at the bottom: the k-prefix constraint could
        # still pass, but the per-prefix constraint fails early.
        labels = ["b", "b", "a", "a"]
        dataset = two_group_dataset(labels)
        ordering = identity_ordering(dataset)
        oracle = PrefixProportionalOracle("group", "a", k=4, min_fraction=0.5)
        assert not oracle.is_satisfactory(ordering, dataset)

    def test_min_fraction_satisfied_by_interleaved_items(self):
        labels = ["a", "b", "a", "b"]
        dataset = two_group_dataset(labels)
        oracle = PrefixProportionalOracle("group", "a", k=4, min_fraction=0.5)
        assert oracle.is_satisfactory(identity_ordering(dataset), dataset)

    def test_max_fraction_blocks_protected_monopoly_at_top(self):
        labels = ["a", "a", "b", "b", "b", "b"]
        dataset = two_group_dataset(labels)
        oracle = PrefixProportionalOracle("group", "a", k=4, max_fraction=0.5)
        # Prefix of length 1 and 2 are 100% protected.
        assert not oracle.is_satisfactory(identity_ordering(dataset), dataset)

    def test_prefix_constraint_implies_topk_constraint(self):
        # If every prefix satisfies the max bound, then in particular the k
        # prefix does, so the FM1 oracle with the same bound must also accept.
        rng = np.random.default_rng(0)
        for trial in range(20):
            labels = rng.choice(["a", "b"], size=12).tolist()
            if "a" not in labels or "b" not in labels:
                continue
            dataset = two_group_dataset(labels)
            ordering = rng.permutation(12)
            prefix_oracle = PrefixProportionalOracle("group", "a", k=6, max_fraction=0.5)
            fm1_oracle = ProportionalOracle("group", "a", k=6, max_fraction=0.5)
            if prefix_oracle.is_satisfactory(ordering, dataset):
                assert fm1_oracle.is_satisfactory(ordering, dataset)

    def test_min_prefix_relaxes_early_prefixes(self):
        # Protected items arrive late; with the bound enforced from the first
        # prefix the ordering fails, but skipping the first two prefixes makes
        # it acceptable.
        labels = ["b", "b", "a", "a"]
        dataset = two_group_dataset(labels)
        ordering = identity_ordering(dataset)
        strict = PrefixProportionalOracle("group", "a", k=4, min_fraction=0.5)
        relaxed = PrefixProportionalOracle(
            "group", "a", k=4, min_fraction=0.5, min_prefix=4
        )
        assert not strict.is_satisfactory(ordering, dataset)
        assert relaxed.is_satisfactory(ordering, dataset)

    def test_min_prefix_must_be_positive(self):
        with pytest.raises(OracleError):
            PrefixProportionalOracle("group", "a", k=4, min_fraction=0.5, min_prefix=0)

    def test_describe_mentions_min_prefix(self):
        oracle = PrefixProportionalOracle(
            "group", "a", k=10, min_fraction=0.3, min_prefix=5
        )
        assert "length >= 5" in oracle.describe()

    def test_matching_dataset_share_constructor(self):
        labels = ["a"] * 5 + ["b"] * 5
        dataset = two_group_dataset(labels)
        oracle = PrefixProportionalOracle.matching_dataset_share(
            dataset, "group", "a", k=4, slack=0.25
        )
        assert oracle.min_fraction == pytest.approx(0.25)
        assert oracle.max_fraction == pytest.approx(0.75)

    def test_matching_dataset_share_rejects_negative_slack(self):
        dataset = two_group_dataset(["a", "b"])
        with pytest.raises(OracleError):
            PrefixProportionalOracle.matching_dataset_share(
                dataset, "group", "a", k=2, slack=-0.1
            )

    def test_describe_mentions_bounds(self):
        oracle = PrefixProportionalOracle("group", "a", k=4, min_fraction=0.2, max_fraction=0.6)
        description = oracle.describe()
        assert "20%" in description and "60%" in description


class TestMinimumAtEveryPrefixOracle:
    def test_rejects_invalid_target(self):
        with pytest.raises(OracleError):
            MinimumAtEveryPrefixOracle("group", "a", k=4, target_fraction=1.2)

    def test_minimum_at_matches_ceiling(self):
        oracle = MinimumAtEveryPrefixOracle("group", "a", k=10, target_fraction=0.3)
        assert oracle.minimum_at(1) == 1
        assert oracle.minimum_at(3) == 1
        assert oracle.minimum_at(4) == 2
        assert oracle.minimum_at(10) == 3

    def test_minimum_at_rejects_non_positive_prefix(self):
        oracle = MinimumAtEveryPrefixOracle("group", "a", k=10, target_fraction=0.3)
        with pytest.raises(OracleError):
            oracle.minimum_at(0)

    def test_zero_target_accepts_everything(self):
        labels = ["b"] * 6
        dataset = Dataset(
            np.column_stack([np.arange(6.0) + 1, np.ones(6)]),
            ["value", "constant"],
            types={"group": labels},
        )
        oracle = MinimumAtEveryPrefixOracle("group", "a", k=6, target_fraction=0.0)
        assert oracle.is_satisfactory(np.arange(6), dataset)

    def test_rejects_when_protected_arrive_too_late(self):
        labels = ["b", "b", "b", "a", "a", "a"]
        dataset = two_group_dataset(labels)
        oracle = MinimumAtEveryPrefixOracle("group", "a", k=6, target_fraction=0.5)
        assert not oracle.is_satisfactory(identity_ordering(dataset), dataset)

    def test_accepts_alternating_ranking(self):
        labels = ["a", "b", "a", "b", "a", "b"]
        dataset = two_group_dataset(labels)
        oracle = MinimumAtEveryPrefixOracle("group", "a", k=6, target_fraction=0.5)
        assert oracle.is_satisfactory(identity_ordering(dataset), dataset)

    def test_describe_mentions_target(self):
        oracle = MinimumAtEveryPrefixOracle("group", "a", k=6, target_fraction=0.5)
        assert "50%" in oracle.describe()


# --------------------------------------------------------------------------- #
# pairwise measures
# --------------------------------------------------------------------------- #
class TestPairwiseMeasures:
    def test_protected_all_on_top_gives_rate_one(self):
        labels = ["a", "a", "b", "b"]
        dataset = two_group_dataset(labels)
        ordering = identity_ordering(dataset)
        assert protected_above_rate(dataset, ordering, "group", "a") == pytest.approx(1.0)
        assert rank_biserial_correlation(dataset, ordering, "group", "a") == pytest.approx(1.0)

    def test_protected_all_on_bottom_gives_rate_zero(self):
        labels = ["b", "b", "a", "a"]
        dataset = two_group_dataset(labels)
        ordering = identity_ordering(dataset)
        assert protected_above_rate(dataset, ordering, "group", "a") == pytest.approx(0.0)
        assert rank_biserial_correlation(dataset, ordering, "group", "a") == pytest.approx(-1.0)

    def test_perfect_interleaving_is_near_parity(self):
        labels = ["a", "b", "a", "b", "a", "b"]
        dataset = two_group_dataset(labels)
        ordering = identity_ordering(dataset)
        rate = protected_above_rate(dataset, ordering, "group", "a")
        assert 0.4 < rate < 0.8
        assert pairwise_parity_gap(dataset, ordering, "group", "a") == pytest.approx(
            abs(rate - 0.5)
        )

    def test_rate_matches_brute_force_count(self):
        rng = np.random.default_rng(3)
        labels = rng.choice(["a", "b"], size=15).tolist()
        if "a" not in labels:
            labels[0] = "a"
        if "b" not in labels:
            labels[1] = "b"
        dataset = two_group_dataset(labels)
        ordering = rng.permutation(15)
        ranks = np.empty(15, dtype=int)
        ranks[ordering] = np.arange(15)
        protected = [i for i in range(15) if labels[i] == "a"]
        others = [i for i in range(15) if labels[i] == "b"]
        wins = sum(1 for p in protected for o in others if ranks[p] < ranks[o])
        expected = wins / (len(protected) * len(others))
        assert protected_above_rate(dataset, ordering, "group", "a") == pytest.approx(expected)

    def test_mean_and_median_rank_gap_signs(self):
        labels = ["b", "b", "b", "a", "a", "a"]
        dataset = two_group_dataset(labels)
        ordering = identity_ordering(dataset)
        # Protected items are at the bottom: positive gaps.
        assert mean_rank_gap(dataset, ordering, "group", "a") > 0
        assert median_rank_gap(dataset, ordering, "group", "a") > 0

    def test_requires_full_ordering(self):
        labels = ["a", "b", "a", "b"]
        dataset = two_group_dataset(labels)
        with pytest.raises(OracleError):
            protected_above_rate(dataset, np.array([0, 1]), "group", "a")

    def test_requires_both_groups_present(self):
        labels = ["a", "a", "a"]
        dataset = two_group_dataset(labels)
        with pytest.raises(OracleError):
            protected_above_rate(dataset, np.arange(3), "group", "a")

    @settings(max_examples=40, deadline=None)
    @given(
        labels=st.lists(st.sampled_from(["a", "b"]), min_size=4, max_size=24).filter(
            lambda values: "a" in values and "b" in values
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_rate_in_unit_interval_and_reversal_flips(self, labels, seed):
        dataset = two_group_dataset(labels)
        rng = np.random.default_rng(seed)
        ordering = rng.permutation(len(labels))
        rate = protected_above_rate(dataset, ordering, "group", "a")
        assert 0.0 <= rate <= 1.0
        reversed_rate = protected_above_rate(dataset, ordering[::-1], "group", "a")
        assert rate + reversed_rate == pytest.approx(1.0)
        # Rank-biserial is the affine image of the rate.
        assert rank_biserial_correlation(dataset, ordering, "group", "a") == pytest.approx(
            2 * rate - 1
        )

    @settings(max_examples=40, deadline=None)
    @given(
        labels=st.lists(st.sampled_from(["a", "b"]), min_size=4, max_size=24).filter(
            lambda values: "a" in values and "b" in values
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_mean_gap_bounded_and_antisymmetric(self, labels, seed):
        dataset = two_group_dataset(labels)
        rng = np.random.default_rng(seed)
        ordering = rng.permutation(len(labels))
        gap_protected = mean_rank_gap(dataset, ordering, "group", "a")
        gap_other = mean_rank_gap(dataset, ordering, "group", "b")
        assert -1.0 <= gap_protected <= 1.0
        # Swapping the roles of the two groups flips the sign of the gap.
        assert gap_protected == pytest.approx(-gap_other)
