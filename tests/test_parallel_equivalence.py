"""Serial-vs-pooled differential tests: the PR-9 bit-identity proof.

Every test here runs the same weight grid through a serial engine and a
:class:`~repro.parallel.pool.PoolEngine` wrapping an *independently
preprocessed* twin, and asserts — via the :mod:`differential` harness —
exact answer fingerprints, matching oracle-call budgets, and byte-for-byte
equal index payloads.  Covered:

* all three engine families (``2d``, ``exact``, ``approximate``) at worker
  counts 1, 2 and 4;
* the chaos path: payload-keyed :class:`ChaosOracle` faults produce the same
  per-query ``QueryFailure`` verdicts (same tier labels, same error types)
  whether the chain runs in-process or inside pool workers;
* worker-death isolation: a query whose oracle evaluation kills its worker
  process poisons only its own shard — every other shard still answers
  bit-identically to the serial engine.

Multi-worker tests are skipped on single-CPU machines, where a process pool
proves nothing about parallel execution — set ``REPRO_FORCE_POOL=1`` to run
them anyway (the fork/IPC path works fine on one CPU, just without
concurrency).  ``test_differential_smoke_workers_1_and_2`` always runs, on
any machine: it is the fast smoke target ``scripts/check_all.py --quick``
invokes.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from differential import (
    assert_engines_equivalent,
    entry_fingerprint,
    make_weight_grid,
    payload_bytes,
)
from repro.core.engine import ApproxConfig, ExactConfig, TwoDConfig, create_engine
from repro.data.synthetic import make_compas_like
from repro.fairness.oracle import CountingOracle, FairnessOracle
from repro.fairness.proportional import ProportionalOracle
from repro.parallel.pool import PoolConfig, PoolEngine
from repro.resilience.chaos import ChaosOracle
from repro.resilience.fallback import FallbackEngine, QueryFailure

pytestmark = pytest.mark.parallel

MULTIPROCESS = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2 and os.environ.get("REPRO_FORCE_POOL") != "1",
    reason="multi-worker pool tests prove nothing on one CPU "
    "(set REPRO_FORCE_POOL=1 to run them anyway)",
)

ATTRIBUTES = ["c_days_from_compas", "juv_other_count", "start"]

# (dimension, dataset size, dataset seed, engine config) per family.  Sizes
# are small so even the exact pipeline preprocesses in well under a second;
# seeds are chosen so the FM1 constraint is satisfiable (the 2-D sweep finds
# non-empty satisfactory intervals).
FAMILIES = {
    "2d": (2, 40, 7, TwoDConfig()),
    "exact": (3, 24, 11, ExactConfig(max_hyperplanes=40)),
    "approximate": (3, 40, 11, ApproxConfig(n_cells=64, max_hyperplanes=40)),
}

WORKER_COUNTS = [
    1,
    pytest.param(2, marks=MULTIPROCESS),
    pytest.param(4, marks=MULTIPROCESS),
]


def _dataset(dimension: int, n_items: int, seed: int = 11):
    return make_compas_like(n=n_items, seed=seed).project(ATTRIBUTES[:dimension])


def _counting_oracle(dataset) -> CountingOracle:
    return CountingOracle(
        ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
    )


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def family_pair(request):
    """A serial engine and an independently preprocessed pool-inner twin.

    Two separate preprocessing runs (separate counting oracles) so the
    payload comparison proves preprocessing determinism, not object identity.
    """
    name = request.param
    dimension, n_items, seed, config = FAMILIES[name]
    dataset = _dataset(dimension, n_items, seed=seed)
    serial = create_engine(dataset, _counting_oracle(dataset), config).preprocess()
    inner = create_engine(dataset, _counting_oracle(dataset), config).preprocess()
    return name, dimension, serial, inner


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_pool_matches_serial(family_pair, n_workers):
    name, dimension, serial, inner = family_pair
    with PoolEngine.from_engine(inner, n_workers=n_workers, seed=5) as pool:
        grid = make_weight_grid(12, dimension, seed=2)
        assert_engines_equivalent(serial, pool, grid)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_pool_is_invariant_to_shard_size(family_pair, n_workers):
    """Shard boundaries are serving topology: size 1, 5 and q must all agree."""
    name, dimension, serial, inner = family_pair
    grid = make_weight_grid(7, dimension, seed=8)
    reference = [entry_fingerprint(entry) for entry in serial.suggest_many(grid)]
    for shard_size in (1, 5, len(grid)):
        with PoolEngine.from_engine(
            inner, n_workers=n_workers, shard_size=shard_size, seed=5
        ) as pool:
            entries = pool.suggest_many(grid)
        assert [entry_fingerprint(entry) for entry in entries] == reference, (
            f"{name} pool diverges from serial at shard_size={shard_size}"
        )


def test_differential_smoke_workers_1_and_2():
    """The ``check_all.py --quick`` target: one tiny dataset, workers 1 and 2.

    Deliberately unconditional — even on a single-CPU machine the 2-worker
    run exercises the real fork/IPC/merge path, it is just not concurrent.
    """
    dataset = _dataset(2, 24, seed=7)
    serial = create_engine(dataset, _counting_oracle(dataset), TwoDConfig()).preprocess()
    inner = create_engine(dataset, _counting_oracle(dataset), TwoDConfig()).preprocess()
    grid = make_weight_grid(6, 2, seed=9)
    for n_workers in (1, 2):
        with PoolEngine.from_engine(inner, n_workers=n_workers, seed=1) as pool:
            assert_engines_equivalent(serial, pool, grid)


# --------------------------------------------------------------------------- #
# chaos path: pooled faults must match single-process verdicts
# --------------------------------------------------------------------------- #
@MULTIPROCESS
def test_pooled_chaos_faults_match_single_process_verdicts():
    """Payload-keyed chaos injects the same ``QueryFailure`` verdicts in
    workers as in a single-process chain: same failing rows, same tier
    labels, same error types, and bit-identical answers for clean rows."""
    dimension, n_items, seed, config = FAMILIES["approximate"]
    dataset = _dataset(dimension, n_items, seed=seed)

    def chaotic_oracle() -> ChaosOracle:
        # Built disabled so the two preprocessing runs stay fault-free; the
        # tests flip ``enabled`` before serving starts (the pool snapshots
        # the oracle when its first multi-worker batch spins the executor,
        # so the flip reaches the workers).
        return ChaosOracle(
            ProportionalOracle.at_most_share_plus_slack(
                dataset, "race", "African-American", k=0.3, slack=0.10
            ),
            failure_rate=0.25,
            seed=13,
            enabled=False,
        )

    engine_a = create_engine(dataset, chaotic_oracle(), config).preprocess()
    engine_b = create_engine(dataset, chaotic_oracle(), config).preprocess()
    serial = FallbackEngine.from_engines([engine_a]).preprocess()
    engine_a.oracle.enabled = True
    engine_b.oracle.enabled = True

    grid = make_weight_grid(16, dimension, seed=4)
    with PoolEngine.from_engine(engine_b, n_workers=2, seed=3) as pool:
        entries = assert_engines_equivalent(
            serial, pool, grid, check_oracle_calls=False, check_payloads=False
        )
    failures = [entry for entry in entries if isinstance(entry, QueryFailure)]
    assert failures, "the chaos seed must fault some queries for this test to bite"
    assert len(failures) < len(entries), "some queries must survive the chaos"
    for failure in failures:
        assert failure.errors[0].tier == "0:approximate"
        assert failure.errors[0].error_type == "InjectedFault"
    # The serving composites refuse to serialise; the underlying indexes are
    # still byte-for-byte equal.
    assert payload_bytes(engine_a) == payload_bytes(engine_b)


# --------------------------------------------------------------------------- #
# worker death: a killed worker poisons only its own shard
# --------------------------------------------------------------------------- #
class RecordingOracle(FairnessOracle):
    """Forwards to ``inner`` while recording each ordering's payload hash."""

    def __init__(self, inner: FairnessOracle) -> None:
        self.inner = inner
        self.seen: list[bytes] = []

    def is_satisfactory(self, ordering: np.ndarray, dataset) -> bool:
        self.seen.append(_ordering_hash(ordering))
        return self.inner.is_satisfactory(ordering, dataset)

    def describe(self) -> str:
        return f"recording({self.inner.describe()})"


class KillerOracle(FairnessOracle):
    """Kills its *process* when asked to evaluate a lethal ordering.

    ``os._exit`` models a hard worker crash (segfault, OOM kill): no
    exception, no cleanup, the process is simply gone — exactly the failure
    ``BrokenProcessPool`` isolation exists for.  Lethality is keyed by the
    ordering's payload hash, so the same queries are lethal on every retry.
    """

    def __init__(self, inner: FairnessOracle, lethal: frozenset) -> None:
        self.inner = inner
        self.lethal = lethal

    def is_satisfactory(self, ordering: np.ndarray, dataset) -> bool:
        if _ordering_hash(ordering) in self.lethal:
            os._exit(3)
        return self.inner.is_satisfactory(ordering, dataset)

    def describe(self) -> str:
        return f"killer({self.inner.describe()})"


def _ordering_hash(ordering: np.ndarray) -> bytes:
    payload = np.ascontiguousarray(ordering, dtype=np.int64).tobytes()
    return hashlib.blake2b(payload, digest_size=8).digest()


@MULTIPROCESS
def test_dead_worker_poisons_only_its_own_shard():
    # The approximate family: its online phase evaluates the oracle once per
    # query (is the proposed function already satisfactory?), which gives the
    # killer a per-query ordering to key on.  The 2-D sweep would not work
    # here — it serves purely from cached intervals, no online oracle calls.
    dimension, n_items, seed, config = FAMILIES["approximate"]
    dataset = _dataset(dimension, n_items, seed=seed)
    base = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    serial = create_engine(dataset, base, config).preprocess()
    grid = make_weight_grid(8, dimension, seed=6)
    reference = serial.suggest_many(grid)

    # Map each query row to the ordering hashes its serving evaluates, then
    # pick a poison row with at least one hash exclusive to it (shard size 1:
    # one query per shard, so only the poison shard's worker dies).
    recorder = RecordingOracle(base)
    probe = create_engine(dataset, recorder, config).preprocess()
    per_row: list[set] = []
    for row in range(len(grid)):
        recorder.seen = []
        probe.suggest_many(grid[row : row + 1])
        per_row.append(set(recorder.seen))
    poison_row, lethal = None, frozenset()
    for row, hashes in enumerate(per_row):
        others = set().union(*(h for r, h in enumerate(per_row) if r != row))
        exclusive = hashes - others
        if exclusive:
            poison_row, lethal = row, frozenset(exclusive)
            break
    assert poison_row is not None, "no query with an exclusive ordering; grow the grid"

    inner = create_engine(dataset, base, config).preprocess()
    with PoolEngine.from_engine(inner, n_workers=2, shard_size=1, seed=2) as pool:
        # The killer must only ever run inside worker processes: swap it in
        # after preprocessing, before the first batch snapshots the oracle.
        pool.oracle = KillerOracle(base, lethal)
        entries = pool.suggest_many(grid)
        assert pool.metrics.counter("pool.worker_restarts").value >= 1
        assert pool.metrics.counter("pool.shard_failures").value == 1

    assert len(entries) == len(grid)
    for row, entry in enumerate(entries):
        if row == poison_row:
            assert isinstance(entry, QueryFailure)
            assert entry.index == row
            assert entry.errors[0].tier == "pool"
            assert entry.errors[0].error_type == "BrokenProcessPool"
            assert "twice" in entry.errors[0].message
        else:
            assert entry_fingerprint(entry) == entry_fingerprint(reference[row]), (
                f"row {row} was poisoned by shard {poison_row}'s worker death"
            )


# --------------------------------------------------------------------------- #
# pool construction contracts
# --------------------------------------------------------------------------- #
def test_pool_rejects_non_persistable_inner():
    from repro.exceptions import ConfigurationError
    from repro.resilience.fallback import FallbackConfig

    with pytest.raises(ConfigurationError, match="persistable"):
        PoolConfig(inner=FallbackConfig())


def test_pool_requires_preprocessing_before_serving():
    from repro.exceptions import NotPreprocessedError

    dataset = _dataset(2, 20, seed=1)
    pool = PoolEngine(dataset, _counting_oracle(dataset), PoolConfig(n_workers=1))
    with pytest.raises(NotPreprocessedError):
        pool.suggest_many(make_weight_grid(3, 2, seed=0))
