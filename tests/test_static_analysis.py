"""The contract-linter gate (tier-1) and the rule engine's own tests.

Two jobs, same pattern as ``tests/test_docs.py`` driving ``check_docs``:

* the gate — ``repro.analysis`` must run clean over the whole ``src/repro``
  tree with the committed allowlist, with zero inline suppression comments,
  so every contract the linter encodes (engine seam, oracle batch parity,
  typed exceptions, determinism, registry hygiene) stays enforced forever;
* the engine — each rule is proven to fire on a seeded violation fixture and
  stay quiet on the matching clean fixture, and the machinery around the
  rules (suppression comments, allowlist handling, syntax-error reporting,
  JSON schema) is pinned.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALLOWLIST_FILENAME,
    Allowlist,
    REPORT_FORMAT,
    all_rules,
    render_json,
    run_analysis,
    rules_by_id,
)

pytestmark = pytest.mark.static_analysis

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "contracts"
CLI_ENV = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}


def run_over(paths, **kwargs):
    return run_analysis([Path(p) for p in paths], **kwargs)


class TestTier1Gate:
    def test_source_tree_passes_with_committed_allowlist(self):
        allowlist = Allowlist.load(REPO_ROOT / ALLOWLIST_FILENAME)
        result = run_over([SRC_TREE], allowlist=allowlist)
        assert result.findings == [], "\n".join(f.render() for f in result.findings)
        assert result.unused_allowlist_entries == ()

    def test_source_tree_has_no_inline_suppressions(self):
        # Deliberate exceptions belong in contracts_allowlist.txt, where they
        # are reviewed and rot-checked — never silenced in place.
        result = run_over([SRC_TREE], allowlist=Allowlist.empty())
        assert result.suppression_comments == []

    def test_every_allowlist_entry_names_a_known_rule(self):
        known = set(rules_by_id())
        allowlist = Allowlist.load(REPO_ROOT / ALLOWLIST_FILENAME)
        assert allowlist.entries, "committed allowlist should not be empty"
        for entry in allowlist.entries:
            assert entry.rule in known, f"unknown rule id in allowlist: {entry.rule}"

    def test_cli_entry_point_passes_on_the_tree(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/repro"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=CLI_ENV,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout

    def test_check_contracts_script_passes(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_contracts.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=CLI_ENV,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestRuleFixtures:
    """Each rule fires on its seeded violation and passes its clean twin."""

    CASES = {
        "engine-contract": "engine_contract",
        "oracle-batch-parity": "oracle_batch_parity",
        "typed-exceptions": "typed_exceptions",
        "determinism": "determinism",
        "obs-clock": "obs_clock/obs",
        "registry-hygiene": "registry_hygiene",
        "delta-equivalence": "delta_equivalence",
    }

    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_rule_fires_on_violation_fixture(self, rule_id):
        result = run_over([FIXTURES / self.CASES[rule_id] / "bad.py"])
        fired = {finding.rule for finding in result.findings}
        assert rule_id in fired, f"{rule_id} did not fire on its bad fixture"

    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_rule_passes_on_clean_fixture(self, rule_id):
        result = run_over([FIXTURES / self.CASES[rule_id] / "good.py"])
        fired = [f for f in result.findings if f.rule == rule_id]
        assert fired == [], "\n".join(f.render() for f in fired)

    def test_engine_contract_names_every_missing_seam_method(self):
        result = run_over([FIXTURES / "engine_contract" / "bad.py"])
        messages = " ".join(f.message for f in result.findings)
        for method in ("preprocess", "suggest_many", "capabilities"):
            assert method in messages

    def test_determinism_counts_every_violation_kind(self):
        result = run_over([FIXTURES / "determinism" / "bad.py"])
        lines = {f.line for f in result.findings if f.rule == "determinism"}
        # time.time(), unseeded default_rng, np.random.rand, random.random
        assert len(result.findings) == 4
        assert len(lines) >= 2

    def test_determinism_flags_uninitialised_pool_in_parallel_scope(self):
        # The fixture lives under a "parallel" path segment, which puts it in
        # the rule's parallel scope (as src/repro/parallel/ is).
        result = run_over([FIXTURES / "determinism" / "parallel" / "bad.py"])
        fired = [f for f in result.findings if f.rule == "determinism"]
        assert len(fired) == 1
        assert "initializer" in fired[0].message

    def test_determinism_accepts_pool_with_initializer_in_parallel_scope(self):
        result = run_over([FIXTURES / "determinism" / "parallel" / "good.py"])
        fired = [f for f in result.findings if f.rule == "determinism"]
        assert fired == [], "\n".join(f.render() for f in fired)

    def test_determinism_ignores_uninitialised_pool_outside_parallel_scope(self, tmp_path):
        # Same code, no "parallel" path segment: the pool-initializer clause
        # must not fire outside the parallel modules.
        victim = tmp_path / "serving.py"
        victim.write_text(
            (FIXTURES / "determinism" / "parallel" / "bad.py").read_text(
                encoding="utf-8"
            ),
            encoding="utf-8",
        )
        result = run_over([victim])
        assert [f for f in result.findings if f.rule == "determinism"] == []


class TestSuppressionAndAllowlist:
    def test_inline_suppression_comment_silences_the_finding(self):
        result = run_over([FIXTURES / "suppressed.py"])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["typed-exceptions"]
        assert [c.rule for c in result.suppression_comments] == ["typed-exceptions"]

    def test_marker_inside_a_string_is_not_a_suppression(self, tmp_path):
        victim = tmp_path / "strings.py"
        victim.write_text(
            'MARKER = "repro: allow-typed-exceptions"\n'
            'def fail():\n'
            '    raise ValueError(MARKER)\n',
            encoding="utf-8",
        )
        result = run_over([victim])
        assert [f.rule for f in result.findings] == ["typed-exceptions"]
        assert result.suppression_comments == []

    def test_allowlist_entry_covers_matching_finding(self, tmp_path):
        allowfile = tmp_path / ALLOWLIST_FILENAME
        allowfile.write_text(
            "# reviewed\noracle-batch-parity *::ScalarOnlyOracle\n", encoding="utf-8"
        )
        result = run_over(
            [FIXTURES / "oracle_batch_parity" / "bad.py"],
            allowlist=Allowlist.load(allowfile),
        )
        assert result.findings == []
        assert [f.rule for f in result.allowlisted] == ["oracle-batch-parity"]
        assert result.unused_allowlist_entries == ()
        assert result.ok

    def test_allowlist_does_not_cover_other_rules(self, tmp_path):
        allowfile = tmp_path / ALLOWLIST_FILENAME
        allowfile.write_text(
            "determinism *::ScalarOnlyOracle\n", encoding="utf-8"
        )
        result = run_over(
            [FIXTURES / "oracle_batch_parity" / "bad.py"],
            allowlist=Allowlist.load(allowfile),
        )
        assert [f.rule for f in result.findings] == ["oracle-batch-parity"]
        assert len(result.unused_allowlist_entries) == 1
        assert not result.ok

    def test_unused_allowlist_entries_fail_the_run(self, tmp_path):
        allowfile = tmp_path / ALLOWLIST_FILENAME
        allowfile.write_text("typed-exceptions no/such/file.py\n", encoding="utf-8")
        result = run_over(
            [FIXTURES / "typed_exceptions" / "good.py"],
            allowlist=Allowlist.load(allowfile),
        )
        assert result.findings == []
        assert len(result.unused_allowlist_entries) == 1
        assert not result.ok


class TestRobustnessAndReporting:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        shutil.copyfile(FIXTURES / "broken_syntax.txt", broken)
        result = run_over([broken])
        assert [f.rule for f in result.findings] == ["syntax-error"]
        finding = result.findings[0]
        assert finding.line >= 1
        assert "parse" in finding.message

    def test_json_report_schema_is_stable(self, tmp_path):
        allowfile = tmp_path / ALLOWLIST_FILENAME
        allowfile.write_text(
            "oracle-batch-parity *::ScalarOnlyOracle\n", encoding="utf-8"
        )
        result = run_over(
            [FIXTURES / "typed_exceptions" / "bad.py",
             FIXTURES / "oracle_batch_parity" / "bad.py"],
            allowlist=Allowlist.load(allowfile),
        )
        payload = json.loads(render_json(result))
        assert payload["format"] == REPORT_FORMAT
        assert set(payload) == {
            "format",
            "root",
            "checked_files",
            "rules",
            "findings",
            "suppressed",
            "allowlisted",
            "unused_allowlist_entries",
        }
        assert payload["checked_files"] == 2
        assert payload["rules"] == [rule.rule_id for rule in all_rules()]
        for finding in payload["findings"] + payload["allowlisted"]:
            assert set(finding) == {"rule", "file", "line", "message", "anchor"}
            assert isinstance(finding["line"], int)
        assert len(payload["allowlisted"]) == 1

    def test_findings_are_sorted_and_deterministic(self):
        first = run_over([FIXTURES / "typed_exceptions" / "bad.py"])
        second = run_over([FIXTURES / "typed_exceptions" / "bad.py"])
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]
        lines = [f.line for f in first.findings]
        assert lines == sorted(lines)

    def test_cli_fails_on_violations_and_lists_rules(self):
        bad = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                "--no-allowlist",
                str(FIXTURES / "typed_exceptions" / "bad.py"),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=CLI_ENV,
        )
        assert bad.returncode == 1
        assert "[typed-exceptions]" in bad.stdout

        listing = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=CLI_ENV,
        )
        assert listing.returncode == 0
        for rule in all_rules():
            assert rule.rule_id in listing.stdout

    def test_cli_rejects_unknown_paths_and_rules(self):
        missing = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "no/such/dir"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=CLI_ENV,
        )
        assert missing.returncode == 2
        unknown = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--rule", "no-such-rule", "src/repro"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=CLI_ENV,
        )
        assert unknown.returncode == 2


class TestCheckAll:
    def test_consolidated_gate_passes(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_all.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=CLI_ENV,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "all gates passed" in result.stdout
