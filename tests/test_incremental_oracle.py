"""Equivalence tests for the vectorized + incremental sweep hot path.

Two retained reference paths anchor these tests:

* the scalar per-pair exchange construction
  (``build_exchange_angles_2d_reference`` / ``build_exchange_hyperplanes_reference``),
* black-box per-sector oracle evaluation (``TwoDRaySweep(use_incremental=False)``).

The vectorized kernels and the incremental-oracle protocol must reproduce
them *exactly*: same angles (bit-for-bit), same pair labels, same
satisfactory intervals, and the same oracle-call accounting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.two_dim import TwoDRaySweep
from repro.data.dataset import Dataset
from repro.data.dominance import (
    dominance_matrix,
    exchange_pair_indices,
    non_dominated_pairs,
    pairwise_close_matrix,
)
from repro.data.synthetic import make_compas_like
from repro.fairness.composite import AndOracle, NotOracle, OrOracle
from repro.fairness.incremental import as_incremental
from repro.fairness.multi_attribute import MultiAttributeOracle
from repro.fairness.oracle import CallableOracle, CountingOracle
from repro.fairness.prefix import MinimumAtEveryPrefixOracle, PrefixProportionalOracle
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle
from repro.geometry.dual import (
    build_exchange_angles_2d,
    build_exchange_angles_2d_reference,
    build_exchange_hyperplanes,
    build_exchange_hyperplanes_reference,
    has_exchange,
)


def _compas_2d(n: int, seed: int) -> Dataset:
    return make_compas_like(n=n, seed=seed).project(
        ["c_days_from_compas", "juv_other_count"]
    )


def _oracle_zoo(dataset: Dataset) -> list:
    """One oracle of every incremental-capable flavour, on the given dataset."""
    fm1 = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    both_sides = ProportionalOracle(
        "race", "African-American", k=0.4, min_fraction=0.2, max_fraction=0.7
    )
    bound = TopKGroupBoundOracle("sex", "male", k=10, min_count=2, max_count=8)
    prefix = PrefixProportionalOracle(
        "race", "African-American", k=0.4, max_fraction=0.8, min_prefix=3
    )
    fair = MinimumAtEveryPrefixOracle("sex", "male", k=12, target_fraction=0.3)
    fm2 = MultiAttributeOracle.from_dataset_shares(
        dataset, {"sex": ["male"], "race": ["African-American"]}, k=0.3
    )
    return [
        fm1,
        both_sides,
        bound,
        prefix,
        fair,
        fm2,
        AndOracle([fm1, bound]),
        OrOracle([both_sides, fair]),
        NotOracle(prefix),
    ]


class TestVectorizedKernels:
    @pytest.mark.perf_smoke
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exchange_angles_match_reference_exactly(self, seed):
        dataset = _compas_2d(60, seed)
        assert build_exchange_angles_2d(dataset) == build_exchange_angles_2d_reference(
            dataset
        )

    def test_exchange_angles_with_duplicates_and_dominated_rows(self):
        scores = np.array(
            [
                [1.0, 2.0],
                [1.0, 2.0],  # exact duplicate of item 0
                [2.0, 1.0],
                [0.5, 0.5],  # dominated by everything
                [1.0 + 5e-9, 2.0],  # allclose-duplicate of item 0
            ]
        )
        dataset = Dataset(scores=scores, scoring_attributes=["x", "y"])
        vectorized = build_exchange_angles_2d(dataset)
        assert vectorized == build_exchange_angles_2d_reference(dataset)
        labels = {(i, j) for _, i, j in vectorized}
        assert (0, 1) not in labels
        assert (0, 4) not in labels
        assert (0, 2) in labels

    @pytest.mark.parametrize("seed", [3, 4])
    def test_exchange_hyperplanes_match_reference_exactly(self, seed):
        dataset = make_compas_like(n=30, seed=seed).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        vectorized = build_exchange_hyperplanes(dataset)
        reference = build_exchange_hyperplanes_reference(dataset)
        assert [(p.label, p.coefficients) for p in vectorized] == [
            (p.label, p.coefficients) for p in reference
        ]

    def test_exchange_hyperplanes_subset_match_reference(self, paper_3d_dataset):
        indices = np.array([2, 0, 3])
        vectorized = build_exchange_hyperplanes(paper_3d_dataset, item_indices=indices)
        reference = build_exchange_hyperplanes_reference(
            paper_3d_dataset, item_indices=indices
        )
        assert [(p.label, p.coefficients) for p in vectorized] == [
            (p.label, p.coefficients) for p in reference
        ]

    @pytest.mark.parametrize("seed", [0, 5])
    def test_non_dominated_pairs_matches_nested_loop(self, seed):
        scores = make_compas_like(n=40, seed=seed).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        ).scores
        matrix = dominance_matrix(scores)
        n = matrix.shape[0]
        reference = [
            (i, j)
            for i in range(n - 1)
            for j in range(i + 1, n)
            if not matrix[i, j] and not matrix[j, i]
        ]
        assert non_dominated_pairs(scores) == reference

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_pairwise_close_matrix_matches_allclose(self, seed):
        """The broadcast closeness matrix encodes exactly np.allclose's rule."""
        rng = np.random.default_rng(seed)
        scores = rng.random((10, 3))
        scores[4] = scores[1]
        scores[7] = scores[2] + 1e-9
        close = pairwise_close_matrix(scores)
        for i in range(scores.shape[0]):
            for j in range(scores.shape[0]):
                assert close[i, j] == np.allclose(scores[i], scores[j])

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_exchange_pair_indices_agrees_with_has_exchange(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random((12, 3))
        # Inject duplicates and dominated rows to exercise every mask.
        scores[3] = scores[0]
        scores[5] = scores[1] + 0.5
        pairs = {tuple(pair) for pair in exchange_pair_indices(scores).tolist()}
        for i in range(scores.shape[0] - 1):
            for j in range(i + 1, scores.shape[0]):
                assert ((i, j) in pairs) == has_exchange(scores[i], scores[j])


class TestIncrementalProtocol:
    @pytest.mark.parametrize("oracle_index", range(9))
    def test_verdicts_track_is_satisfactory_under_random_swaps(self, oracle_index):
        dataset = _compas_2d(50, seed=11)
        oracle = _oracle_zoo(dataset)[oracle_index]
        incremental = as_incremental(oracle)
        assert incremental is not None

        rng = np.random.default_rng(oracle_index)
        ordering = rng.permutation(dataset.n_items)
        incremental.begin(ordering.copy(), dataset)
        assert incremental.verdict() == oracle.is_satisfactory(ordering, dataset)
        for _ in range(120):
            pos_i, pos_j = rng.choice(dataset.n_items, size=2, replace=False)
            ordering[pos_i], ordering[pos_j] = ordering[pos_j], ordering[pos_i]
            incremental.apply_swap(int(pos_i), int(pos_j))
            assert incremental.verdict() == oracle.is_satisfactory(ordering, dataset)

    def test_black_box_oracles_are_not_incremental(self):
        callable_oracle = CallableOracle(lambda ordering, dataset: True, "always")
        assert as_incremental(callable_oracle) is None
        # A counting wrapper is only as capable as what it wraps.
        assert as_incremental(CountingOracle(callable_oracle)) is None
        dataset = _compas_2d(20, seed=0)
        fm1 = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        assert as_incremental(CountingOracle(fm1)) is not None
        assert as_incremental(AndOracle([fm1, callable_oracle])) is None

    def test_shared_oracle_instance_in_composite_falls_back_to_black_box(self):
        """A composite referencing the same oracle twice must not run incrementally.

        Composites forward every swap to each child reference; a shared
        instance would absorb each transposition twice (self-cancelling) and
        silently corrupt its counter state.
        """
        dataset = _compas_2d(40, seed=4)
        leaf = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        shared = AndOracle([leaf, leaf])
        assert as_incremental(shared) is None
        nested = OrOracle([leaf, AndOracle([leaf])])
        assert as_incremental(nested) is None
        black_box = TwoDRaySweep(dataset, shared, use_incremental=False).run()
        swept = TwoDRaySweep(dataset, shared).run()
        assert [(iv.start, iv.end) for iv in swept.intervals] == [
            (iv.start, iv.end) for iv in black_box.intervals
        ]

    def test_subclass_overriding_is_satisfactory_falls_back_to_black_box(self):
        """Overriding is_satisfactory without verdict must disable the protocol.

        Otherwise the sweep would use the parent's incremental verdict and
        silently ignore the override.
        """

        class StricterOracle(ProportionalOracle):
            def is_satisfactory(self, ordering, dataset) -> bool:
                return super().is_satisfactory(ordering, dataset) and int(ordering[0]) % 2 == 0

        dataset = _compas_2d(30, seed=2)
        stricter = StricterOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        assert as_incremental(stricter) is None
        reference = TwoDRaySweep(
            dataset,
            CountingOracle(stricter),
            use_incremental=False,
            exchange_builder=build_exchange_angles_2d_reference,
        ).run()
        swept = TwoDRaySweep(dataset, stricter).run()
        assert [(iv.start, iv.end) for iv in swept.intervals] == [
            (iv.start, iv.end) for iv in reference.intervals
        ]

    def test_counting_oracle_counts_verdicts(self):
        dataset = _compas_2d(20, seed=1)
        fm1 = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        counting = CountingOracle(fm1)
        incremental = as_incremental(counting)
        incremental.begin(np.arange(dataset.n_items), dataset)
        assert counting.calls == 0
        incremental.verdict()
        incremental.apply_swap(0, 1)
        incremental.verdict()
        assert counting.calls == 2


class TestSweepEquivalence:
    @pytest.mark.perf_smoke
    @pytest.mark.parametrize("oracle_index", range(9))
    def test_incremental_sweep_matches_black_box_sweep(self, oracle_index):
        dataset = _compas_2d(40, seed=oracle_index)
        black_box = CountingOracle(_oracle_zoo(dataset)[oracle_index])
        incremental = CountingOracle(_oracle_zoo(dataset)[oracle_index])

        reference = TwoDRaySweep(
            dataset,
            black_box,
            use_incremental=False,
            exchange_builder=build_exchange_angles_2d_reference,
        ).run()
        fast = TwoDRaySweep(dataset, incremental).run()

        assert [(iv.start, iv.end) for iv in fast.intervals] == [
            (iv.start, iv.end) for iv in reference.intervals
        ]
        assert fast.n_exchanges == reference.n_exchanges
        assert fast.oracle_calls == reference.oracle_calls
        assert incremental.calls == black_box.calls

    @pytest.mark.parametrize("seed", [0, 7])
    def test_sweep_with_tied_exchange_angles(self, seed):
        """Coincident exchange angles batch several (non-adjacent) swaps per event."""
        rng = np.random.default_rng(seed)
        base = rng.integers(1, 6, size=(14, 2)).astype(float)
        dataset = Dataset(
            scores=base,
            scoring_attributes=["x", "y"],
            types={"group": np.array(["a", "b"] * 7)},
        )
        oracle_factory = lambda: CountingOracle(
            TopKGroupBoundOracle("group", "a", k=5, max_count=3)
        )
        black_box, incremental = oracle_factory(), oracle_factory()
        reference = TwoDRaySweep(dataset, black_box, use_incremental=False).run()
        fast = TwoDRaySweep(dataset, incremental).run()
        assert [(iv.start, iv.end) for iv in fast.intervals] == [
            (iv.start, iv.end) for iv in reference.intervals
        ]
        assert incremental.calls == black_box.calls


class TestIndexStartCache:
    def test_interval_starts_refresh_on_assignment(self):
        from repro.core.two_dim import AngularInterval, TwoDIndex

        index = TwoDIndex(intervals=[AngularInterval(0.1, 0.2)], oracle_calls=1)
        assert index.interval_starts.tolist() == [0.1]
        index.intervals = [AngularInterval(0.3, 0.4), AngularInterval(0.8, 0.9)]
        assert index.interval_starts.tolist() == [0.3, 0.8]
        assert index.is_satisfactory_angle(0.85)
        assert not index.is_satisfactory_angle(0.5)
