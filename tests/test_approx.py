"""Tests for the §5 approximation pipeline (CELLPLANE× / MARKCELL / CELLCOLORING / MDONLINE)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approx import ApproximatePreprocessor, MDApproxIndex, md_online
from repro.core.multi_dim import SatRegions, md_baseline
from repro.data.synthetic import make_compas_like
from repro.exceptions import (
    ConfigurationError,
    GeometryError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
)
from repro.fairness.oracle import CallableOracle
from repro.fairness.proportional import TopKGroupBoundOracle
from repro.geometry.angles import to_weights
from repro.geometry.partition import UniformGridPartition, theorem6_bound
from repro.ranking.queries import random_queries
from repro.ranking.scoring import LinearScoringFunction


@pytest.fixture(scope="module")
def approx_setup():
    dataset = make_compas_like(n=30, seed=11).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )
    oracle = TopKGroupBoundOracle("race", "African-American", k=9, max_count=6)
    preprocessor = ApproximatePreprocessor(dataset, oracle, n_cells=36, max_hyperplanes=30)
    index = preprocessor.run()
    return dataset, oracle, index


class TestPreprocessing:
    def test_requires_three_attributes(self, paper_2d_dataset, balanced_topk_oracle):
        with pytest.raises(GeometryError):
            ApproximatePreprocessor(paper_2d_dataset, balanced_topk_oracle)

    def test_validates_n_cells(self, paper_3d_dataset, balanced_topk_oracle):
        with pytest.raises(ConfigurationError):
            ApproximatePreprocessor(paper_3d_dataset, balanced_topk_oracle, n_cells=0)

    def test_validates_partition_kind(self, paper_3d_dataset, balanced_topk_oracle):
        with pytest.raises(ConfigurationError):
            ApproximatePreprocessor(paper_3d_dataset, balanced_topk_oracle, partition="weird")

    def test_partition_dimension_checked(self, paper_3d_dataset, balanced_topk_oracle):
        wrong = UniformGridPartition(5, 32)
        with pytest.raises(ConfigurationError):
            ApproximatePreprocessor(paper_3d_dataset, balanced_topk_oracle, partition=wrong)

    def test_index_covers_every_cell(self, approx_setup):
        _, _, index = approx_setup
        assert len(index.assigned_angles) == index.n_cells
        assert len(index.marked) == index.n_cells

    def test_every_cell_assigned_when_satisfiable(self, approx_setup):
        """CELLCOLORING must propagate a function to every cell once one exists."""
        _, _, index = approx_setup
        assert index.has_satisfactory_function
        assert all(angles is not None for angles in index.assigned_angles)

    def test_marked_cells_carry_functions_inside_the_cell(self, approx_setup):
        _, _, index = approx_setup
        cells = index.partition.cells()
        for cell in cells:
            if index.marked[cell.index]:
                assert cell.contains(index.assigned_angles[cell.index], tolerance=1e-6)

    def test_assigned_functions_are_satisfactory(self, approx_setup):
        dataset, oracle, index = approx_setup
        for angles in index.assigned_angles:
            function = LinearScoringFunction(tuple(to_weights(np.asarray(angles))))
            assert oracle.evaluate_function(function, dataset)

    def test_timings_recorded(self, approx_setup):
        _, _, index = approx_setup
        timings = index.timings
        assert timings.total >= timings.mark_cells
        assert timings.mark_cells > 0.0
        assert timings.hyperplane_construction > 0.0

    def test_approximation_bound_matches_theorem6(self, approx_setup):
        _, _, index = approx_setup
        assert index.approximation_bound() == pytest.approx(
            theorem6_bound(index.n_cells, 3)
        )

    def test_adaptive_partition_backend(self):
        dataset = make_compas_like(n=15, seed=12).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = CallableOracle(lambda ordering, data: True, "always")
        index = ApproximatePreprocessor(
            dataset, oracle, n_cells=25, partition="angle", max_hyperplanes=10
        ).run()
        assert index.has_satisfactory_function

    def test_unsatisfiable_constraint_leaves_cells_unassigned(self):
        dataset = make_compas_like(n=12, seed=13).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = CallableOracle(lambda ordering, data: False, "never")
        index = ApproximatePreprocessor(dataset, oracle, n_cells=16, max_hyperplanes=10).run()
        assert not index.has_satisfactory_function
        assert index.n_marked_cells == 0


class TestMDOnline:
    def test_satisfactory_query_returned_unchanged(self, approx_setup):
        dataset, oracle, index = approx_setup
        for query in random_queries(3, 40, seed=14):
            if oracle.evaluate_function(query, dataset):
                result = md_online(index, query)
                assert result.satisfactory
                assert result.angular_distance == 0.0
                return
        pytest.skip("no satisfactory random query found for this configuration")

    def test_repaired_queries_are_satisfactory(self, approx_setup):
        dataset, oracle, index = approx_setup
        repaired = 0
        for query in random_queries(3, 25, seed=15):
            result = md_online(index, query)
            if not result.satisfactory:
                repaired += 1
                assert oracle.evaluate_function(result.function, dataset)
        assert repaired > 0

    def test_theorem6_guarantee_against_exact_baseline(self, approx_setup):
        """MDONLINE answers are within the Theorem 6 bound of the exact optimum."""
        dataset, oracle, index = approx_setup
        exact_index = SatRegions(dataset, oracle, max_hyperplanes=30).run()
        bound = index.approximation_bound()
        for query in random_queries(3, 10, seed=16):
            if oracle.evaluate_function(query, dataset):
                continue
            approximate = md_online(index, query)
            exact = md_baseline(dataset, oracle, exact_index, query)
            assert approximate.angular_distance <= exact.angular_distance + bound + 1e-6

    def test_radius_preserved(self, approx_setup):
        dataset, oracle, index = approx_setup
        for query in random_queries(3, 20, seed=17):
            if oracle.evaluate_function(query, dataset):
                continue
            scaled = LinearScoringFunction(tuple(4.0 * query.as_array()))
            result = md_online(index, scaled)
            assert np.linalg.norm(result.function.as_array()) == pytest.approx(4.0, rel=1e-6)
            return

    def test_dimension_mismatch(self, approx_setup):
        _, _, index = approx_setup
        with pytest.raises(GeometryError):
            md_online(index, LinearScoringFunction((1.0, 1.0)))

    def test_not_preprocessed(self, approx_setup):
        dataset, oracle, _ = approx_setup
        empty = MDApproxIndex(
            dataset=dataset, oracle=oracle, partition=UniformGridPartition(2, 4)
        )
        with pytest.raises(NotPreprocessedError):
            md_online(empty, LinearScoringFunction((1.0, 1.0, 1.0)))

    def test_unsatisfiable_raises(self):
        dataset = make_compas_like(n=10, seed=18).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = CallableOracle(lambda ordering, data: False, "never")
        index = ApproximatePreprocessor(dataset, oracle, n_cells=9, max_hyperplanes=6).run()
        with pytest.raises(NoSatisfactoryFunctionError):
            md_online(index, LinearScoringFunction((1.0, 1.0, 1.0)))

    def test_query_method_on_index(self, approx_setup):
        _, _, index = approx_setup
        result = index.query(LinearScoringFunction((0.4, 0.3, 0.3)))
        assert result.function.dimension == 3
