"""Persistence fuzzing: corrupt store files must fail typed, never half-load.

Covers the checksum envelope in :mod:`repro.io.index_store` (truncation,
bit flips, unknown store versions, malformed envelopes) and the CLI's
``suggest --load-index`` error paths (missing, corrupt, wrong-kind files →
actionable message on stderr and a nonzero exit code, never a traceback).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.engine import TwoDConfig, create_engine
from repro.core.two_dim import AngularInterval, TwoDIndex
from repro.data.synthetic import make_compas_like
from repro.exceptions import ConfigurationError, IndexIntegrityError
from repro.fairness.proportional import ProportionalOracle
from repro.io.index_store import (
    STORE_FORMAT,
    load_engine,
    load_index,
    payload_checksum,
    save_engine,
    save_index,
    two_d_index_to_dict,
)

SAMPLE_INDEX = TwoDIndex(
    intervals=[AngularInterval(0.1, 0.5), AngularInterval(0.9, 1.2)],
    n_exchanges=3,
    oracle_calls=7,
)


@pytest.fixture(scope="module")
def engine_file(tmp_path_factory):
    """A saved, preprocessed 2-D engine plus the oracle needed to reload it."""
    dataset = make_compas_like(n=60, seed=11).project(
        ["c_days_from_compas", "juv_other_count"]
    )
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.40
    )
    engine = create_engine(dataset, oracle, TwoDConfig()).preprocess()
    path = tmp_path_factory.mktemp("store") / "engine.json"
    save_engine(engine, path)
    return path, oracle, engine


def _flip_bit(text: str, char_index: int, bit: int = 0) -> str:
    data = bytearray(text.encode("utf-8"))
    data[char_index] ^= 1 << bit
    return data.decode("utf-8", errors="replace")


# --------------------------------------------------------------------------- #
# the envelope itself
# --------------------------------------------------------------------------- #
class TestChecksumEnvelope:
    def test_round_trip_preserves_the_index(self, tmp_path):
        path = tmp_path / "index.json"
        save_index(SAMPLE_INDEX, path)
        loaded = load_index(path)
        assert loaded.intervals == SAMPLE_INDEX.intervals
        assert loaded.oracle_calls == SAMPLE_INDEX.oracle_calls

    def test_saved_file_carries_a_verifiable_envelope(self, tmp_path):
        path = tmp_path / "index.json"
        save_index(SAMPLE_INDEX, path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["format"] == STORE_FORMAT
        assert document["algorithm"] == "sha256"
        assert document["digest"] == payload_checksum(document["payload"])

    def test_checksum_is_formatting_independent(self):
        payload = two_d_index_to_dict(SAMPLE_INDEX)
        reordered = dict(reversed(list(payload.items())))
        assert payload_checksum(payload) == payload_checksum(reordered)

    def test_legacy_bare_payload_still_loads(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(two_d_index_to_dict(SAMPLE_INDEX)), encoding="utf-8")
        assert load_index(path).intervals == SAMPLE_INDEX.intervals


# --------------------------------------------------------------------------- #
# fuzzing: every corruption is a typed error, never a partial index
# --------------------------------------------------------------------------- #
class TestCorruptionFuzz:
    @pytest.fixture()
    def index_file(self, tmp_path):
        path = tmp_path / "index.json"
        save_index(SAMPLE_INDEX, path)
        return path

    def test_truncation_at_any_length_is_typed(self, index_file):
        text = index_file.read_text(encoding="utf-8")
        for keep in (0, 1, len(text) // 4, len(text) // 2, len(text) - 1):
            index_file.write_text(text[:keep], encoding="utf-8")
            with pytest.raises(IndexIntegrityError) as excinfo:
                load_index(index_file)
            assert excinfo.value.hint  # always tells the user what to do

    def test_bit_flips_in_the_payload_are_typed(self, index_file):
        text = index_file.read_text(encoding="utf-8")
        payload_start = text.index('"payload"')
        rng = np.random.default_rng(0)
        for _ in range(25):
            char_index = int(rng.integers(payload_start, len(text) - 1))
            bit = int(rng.integers(0, 7))
            index_file.write_text(_flip_bit(text, char_index, bit), encoding="utf-8")
            # Either the JSON breaks (corrupt/truncated) or the digest no
            # longer matches — both must surface as the same typed error.
            with pytest.raises(IndexIntegrityError):
                load_index(index_file)

    def test_digest_mismatch_names_both_digests(self, index_file):
        document = json.loads(index_file.read_text(encoding="utf-8"))
        document["payload"]["oracle_calls"] = 999  # hand-edit
        index_file.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(IndexIntegrityError, match="integrity check"):
            load_index(index_file)

    def test_unknown_store_version_is_typed(self, index_file):
        document = json.loads(index_file.read_text(encoding="utf-8"))
        document["format"] = "repro.store/v9"
        index_file.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(IndexIntegrityError, match="repro.store/v9"):
            load_index(index_file)

    def test_unknown_algorithm_is_typed(self, index_file):
        document = json.loads(index_file.read_text(encoding="utf-8"))
        document["algorithm"] = "crc32"
        index_file.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(IndexIntegrityError, match="crc32"):
            load_index(index_file)

    @pytest.mark.parametrize("missing", ["payload", "digest"])
    def test_malformed_envelope_is_typed(self, index_file, missing):
        document = json.loads(index_file.read_text(encoding="utf-8"))
        del document[missing]
        index_file.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(IndexIntegrityError, match="malformed checksum envelope"):
            load_index(index_file)

    def test_checksummed_but_schema_broken_payload_is_configuration_error(
        self, index_file
    ):
        # A valid envelope around a nonsense payload is not *corruption* —
        # the digest matches what was written — so the schema layer reports it.
        payload = {"format": "repro.index/v1", "index_kind": "2d", "intervals": "nope"}
        document = {
            "format": STORE_FORMAT,
            "algorithm": "sha256",
            "digest": payload_checksum(payload),
            "payload": payload,
        }
        index_file.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="malformed"):
            load_index(index_file)


class TestEngineFileCorruption:
    def test_round_trip_answers_identically(self, engine_file):
        path, oracle, engine = engine_file
        restored = load_engine(path, oracle)
        weights = np.array([0.9, 0.1])
        from repro.ranking.scoring import LinearScoringFunction

        function = LinearScoringFunction(tuple(weights.tolist()))
        assert restored.suggest(function) == engine.suggest(function)

    def test_bit_flipped_engine_file_is_typed(self, engine_file, tmp_path):
        path, oracle, _ = engine_file
        text = path.read_text(encoding="utf-8")
        payload_start = text.index('"payload"')
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text(
            _flip_bit(text, payload_start + 40, bit=1), encoding="utf-8"
        )
        with pytest.raises(IndexIntegrityError):
            load_engine(corrupt, oracle)

    def test_bare_index_file_is_rejected_by_load_engine(self, engine_file, tmp_path):
        _, oracle, _ = engine_file
        path = tmp_path / "index.json"
        save_index(SAMPLE_INDEX, path)
        with pytest.raises(ConfigurationError, match="bare index"):
            load_engine(path, oracle)

    def test_arbitrary_json_is_rejected_by_load_engine(self, engine_file, tmp_path):
        _, oracle, _ = engine_file
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not a serialised engine"):
            load_engine(path, oracle)


# --------------------------------------------------------------------------- #
# CLI error paths: actionable message + nonzero exit, no traceback
# --------------------------------------------------------------------------- #
class TestCliLoadIndexErrors:
    _BASE = [
        "suggest",
        "--attribute",
        "race",
        "--group",
        "African-American",
        "--k",
        "0.3",
        "--max-share",
        "0.6",
        "--weights",
        "0.9,0.1",
        "--load-index",
    ]

    def test_missing_file(self, tmp_path, capsys):
        code = main(self._BASE + [str(tmp_path / "nowhere.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "does not exist" in captured.err
        assert "--save-index" in captured.err
        assert "Traceback" not in captured.err

    def test_directory_instead_of_file(self, tmp_path, capsys):
        code = main(self._BASE + [str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "directory" in captured.err

    def test_corrupt_file(self, engine_file, tmp_path, capsys):
        path, _, _ = engine_file
        text = path.read_text(encoding="utf-8")
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text(text[: len(text) // 2], encoding="utf-8")
        code = main(self._BASE + [str(corrupt)])
        captured = capsys.readouterr()
        assert code == 2
        assert "corrupt or truncated" in captured.err
        assert "rebuild" in captured.err  # the hint reaches the user
        assert "Traceback" not in captured.err

    def test_bit_flipped_file(self, engine_file, tmp_path, capsys):
        path, _, _ = engine_file
        text = path.read_text(encoding="utf-8")
        corrupt = tmp_path / "flipped.json"
        corrupt.write_text(
            _flip_bit(text, text.index('"payload"') + 40, bit=1), encoding="utf-8"
        )
        code = main(self._BASE + [str(corrupt)])
        captured = capsys.readouterr()
        assert code == 2
        assert "integrity" in captured.err or "corrupt" in captured.err
        assert "Traceback" not in captured.err

    def test_wrong_kind_file(self, tmp_path, capsys):
        # A bare *index* file where the CLI expects a saved *engine*.
        path = tmp_path / "index.json"
        save_index(SAMPLE_INDEX, path)
        code = main(self._BASE + [str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot load" in captured.err
        assert "bare index" in captured.err
        assert "Traceback" not in captured.err
