"""Unit tests for the arrangement tree (paper §4.2, Algorithms 5 and 9).

Satellite coverage for the structure the exact engine's incremental insert
path leans on: the ``ATC+`` probe's early exit, dimension validation, and the
structural invariants every node must keep (sides derived from the node's own
region split, leaf accounting, point location landing in a containing leaf).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.arrangement_tree import ArrangementTree, ArrangementTreeNode
from repro.geometry.hyperplane import Hyperplane, Region

pytestmark = pytest.mark.dynamic


def crossing_hyperplanes():
    """Three hyperplanes that all cross the 2-D angle box ``[0, π/2]²``."""
    return [
        Hyperplane((1 / 0.5, 0.0), label=(0, 1)),   # θ0 = 0.5
        Hyperplane((0.0, 1 / 0.8, ), label=(0, 2)),  # θ1 = 0.8
        Hyperplane((1 / 1.1, 1 / 1.1), label=(1, 2)),  # θ0 + θ1 = 1.1
    ]


def built_tree() -> ArrangementTree:
    tree = ArrangementTree(dimension=2)
    for hyperplane in crossing_hyperplanes():
        tree.insert(hyperplane)
    return tree


class TestInsert:
    def test_counts_and_leaves_grow(self):
        tree = ArrangementTree(dimension=2)
        assert tree.n_regions == 1
        assert tree.leaf_regions() == [tree.base_region]
        for expected, hyperplane in enumerate(crossing_hyperplanes(), start=1):
            tree.insert(hyperplane)
            assert tree.n_hyperplanes == expected
        # 3 mutually crossing lines cut the box into at most 7 region.
        assert 4 <= len(tree.leaf_regions()) <= 7
        assert tree.n_regions == len(tree.leaf_regions(skip_empty=False))

    def test_dimension_mismatch_is_typed(self):
        tree = ArrangementTree(dimension=2)
        with pytest.raises(GeometryError, match="dimension mismatch"):
            tree.insert(Hyperplane((1.0,)))
        with pytest.raises(GeometryError, match="dimension mismatch"):
            tree.insert_with_probe(Hyperplane((1.0, 2.0, 3.0)), lambda region: None)
        with pytest.raises(GeometryError):
            built_tree().locate(np.array([0.3]))

    def test_base_region_dimension_must_match(self):
        with pytest.raises(GeometryError):
            ArrangementTree(dimension=2, base_region=Region.whole_space(3))
        with pytest.raises(GeometryError):
            ArrangementTree(dimension=0)


class TestInsertWithProbe:
    def test_probe_sees_every_new_region_when_it_never_fires(self):
        tree = ArrangementTree(dimension=2)
        seen: list[Region] = []
        for hyperplane in crossing_hyperplanes():
            result = tree.insert_with_probe(hyperplane, lambda r: seen.append(r))
            assert result is None
        # Never-firing probe (append returns None): same tree as plain insert.
        plain = built_tree()
        assert tree.n_regions == plain.n_regions
        assert len(seen) >= 2 * len(crossing_hyperplanes()) - 2

    def test_early_exit_stops_the_insertion(self):
        hits: list[Region] = []

        def firing_probe(region: Region):
            hits.append(region)
            return "stop"

        tree = ArrangementTree(dimension=2)
        result = tree.insert_with_probe(crossing_hyperplanes()[0], firing_probe)
        assert result == "stop"
        assert len(hits) == 1  # second side of the root never probed

    def test_early_exit_leaves_subsequent_sides_unsplit(self):
        first, second, _ = crossing_hyperplanes()
        tree = ArrangementTree(dimension=2)
        tree.insert(first)

        calls = {"n": 0}

        def fire_immediately(region: Region):
            calls["n"] += 1
            return calls["n"]

        # `second` crosses both sides of `first`; firing on the first new
        # region must stop before the right side is ever split.
        result = tree.insert_with_probe(second, fire_immediately)
        assert result == 1
        assert calls["n"] == 1
        assert (tree.root.left is None) != (tree.root.right is None)

        # A never-firing probe on a fresh tree splits both sides instead.
        control = ArrangementTree(dimension=2)
        control.insert(first)
        control.insert_with_probe(second, lambda region: None)
        assert control.root.left is not None and control.root.right is not None


class TestNodeInvariants:
    def walk(self, node: ArrangementTreeNode):
        yield node
        for child in (node.left, node.right):
            if child is not None:
                yield from self.walk(child)

    def test_sides_are_the_split_of_the_node_region(self):
        tree = built_tree()
        for node in self.walk(tree.root):
            left, right = node.region.split(node.hyperplane)
            for stored, recomputed in ((node.left_region, left), (node.right_region, right)):
                stored_system = stored.inequality_system()
                recomputed_system = recomputed.inequality_system()
                assert np.array_equal(stored_system[0], recomputed_system[0])
                assert np.array_equal(stored_system[1], recomputed_system[1])
            assert node.sides() == [("left", node.left_region), ("right", node.right_region)]

    def test_children_live_inside_their_side(self):
        tree = built_tree()
        for node in self.walk(tree.root):
            if node.left is not None:
                assert node.left.region is node.left_region
            if node.right is not None:
                assert node.right.region is node.right_region

    def test_locate_returns_a_containing_leaf(self):
        tree = built_tree()
        rng = np.random.default_rng(0)
        points = rng.uniform(0.05, np.pi / 2 - 0.05, size=(50, 2))
        leaves = tree.leaf_regions(skip_empty=False)
        for point in points:
            region = tree.locate(point)
            assert region.contains(point, tolerance=1e-9)
            assert any(leaf is region for leaf in leaves)

    def test_split_tests_accumulate(self):
        tree = ArrangementTree(dimension=2)
        tree.insert(crossing_hyperplanes()[0])
        assert tree.split_tests == 0  # first insert creates the root directly
        tree.insert(crossing_hyperplanes()[1])
        assert tree.split_tests == 2  # tested against both sides of the root
