"""Tests for the fallback engine chain: registry integration and degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    ApproxConfig,
    ExactConfig,
    TwoDConfig,
    available_engines,
    create_engine,
    engine_name_for_config,
    get_engine,
)
from repro.core.monitoring import error_budget_report
from repro.core.session import DesignSession
from repro.core.system import FairRankingDesigner
from repro.exceptions import (
    ConfigurationError,
    FallbackExhaustedError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
)
from repro.fairness.oracle import CallableOracle
from repro.fairness.proportional import ProportionalOracle
from repro.ranking.scoring import LinearScoringFunction
from repro.resilience import (
    ChaosEngine,
    FakeClock,
    FallbackConfig,
    FallbackEngine,
    QueryFailure,
)

TIER_A = ApproxConfig(n_cells=64, max_hyperplanes=40)
TIER_B = ApproxConfig(n_cells=32, max_hyperplanes=30)


@pytest.fixture(scope="module")
def serving_setup(shared_compas_3d, shared_race_oracle_3d):
    """Dataset, oracle, and two preprocessed approximate tiers (A finer than B)."""
    tier_a = create_engine(shared_compas_3d, shared_race_oracle_3d, TIER_A).preprocess()
    tier_b = create_engine(shared_compas_3d, shared_race_oracle_3d, TIER_B).preprocess()
    return shared_compas_3d, shared_race_oracle_3d, tier_a, tier_b


def _queries(q: int, d: int = 3, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.1, 1.0, size=(q, d))


class AlwaysBrokenEngine:
    """An engine stub whose preprocessing always fails."""

    name = "broken"

    def __init__(self, dataset, oracle) -> None:
        self.dataset = dataset
        self.oracle = oracle
        self.is_preprocessed = False

    def preprocess(self, dataset=None, oracle=None):
        raise RuntimeError("this tier never comes up")


# --------------------------------------------------------------------------- #
# registry integration (the PR-2 seam)
# --------------------------------------------------------------------------- #
class TestRegistryIntegration:
    def test_fallback_is_a_registered_engine(self):
        assert "fallback" in available_engines()
        assert get_engine("fallback") is FallbackEngine
        assert engine_name_for_config(FallbackConfig()) == "fallback"

    def test_create_engine_builds_the_chain(self, shared_compas_3d, shared_race_oracle_3d):
        engine = create_engine(
            shared_compas_3d, shared_race_oracle_3d, FallbackConfig(tiers=(TIER_A, TIER_B))
        )
        assert isinstance(engine, FallbackEngine)
        assert engine.name == "fallback"
        assert [type(tier.config).__name__ for tier in engine.engines] == [
            "ApproxConfig",
            "ApproxConfig",
        ]

    def test_default_tiers_by_dimension(self, shared_compas_3d, shared_race_oracle_3d):
        three_d = FallbackEngine(shared_compas_3d, shared_race_oracle_3d)
        assert tuple(type(t) for t in three_d.config.tiers) == (ExactConfig, ApproxConfig)
        two_d = shared_compas_3d.project(["c_days_from_compas", "juv_other_count"])
        oracle_2d = ProportionalOracle.at_most_share_plus_slack(
            two_d, "race", "African-American", k=0.3, slack=0.10
        )
        assert tuple(type(t) for t in FallbackEngine(two_d, oracle_2d).config.tiers) == (
            TwoDConfig,
        )

    def test_capabilities(self):
        caps = FallbackEngine.capabilities()
        assert caps.name == "fallback"
        assert caps.batched and not caps.persistable
        assert caps.supports_dimension(2) and caps.supports_dimension(7)

    def test_not_persistable(self, serving_setup):
        _, _, tier_a, _ = serving_setup
        engine = FallbackEngine.from_engines([tier_a])
        with pytest.raises(ConfigurationError, match="from_engines"):
            engine.to_payload()
        with pytest.raises(ConfigurationError):
            FallbackEngine.from_payload({}, None)


class TestFallbackConfig:
    def test_rejects_nested_chains(self):
        with pytest.raises(ConfigurationError, match="nest"):
            FallbackConfig(tiers=(FallbackConfig(),))

    def test_rejects_non_engine_configs(self):
        with pytest.raises(ConfigurationError):
            FallbackConfig(tiers=("approximate",))  # type: ignore[arg-type]

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ConfigurationError):
            FallbackConfig(per_query_deadline=0.0)

    def test_wrong_config_type_rejected(self, serving_setup):
        dataset, oracle, _, _ = serving_setup
        with pytest.raises(ConfigurationError, match="FallbackConfig"):
            FallbackEngine(dataset, oracle, ApproxConfig())  # type: ignore[arg-type]

    def test_empty_engine_list_rejected(self):
        with pytest.raises(ConfigurationError):
            FallbackEngine.from_engines([])


# --------------------------------------------------------------------------- #
# serving semantics
# --------------------------------------------------------------------------- #
class TestServing:
    def test_queries_require_preprocessing(self, serving_setup):
        dataset, oracle, _, _ = serving_setup
        engine = create_engine(dataset, oracle, FallbackConfig(tiers=(TIER_A,)))
        with pytest.raises(NotPreprocessedError):
            engine.suggest(LinearScoringFunction((0.4, 0.3, 0.3)))
        with pytest.raises(NotPreprocessedError):
            engine.suggest_many(_queries(2))

    def test_happy_path_is_bit_identical_to_first_tier(self, serving_setup):
        _, _, tier_a, _ = serving_setup
        engine = FallbackEngine.from_engines([tier_a]).preprocess()
        matrix = _queries(10)
        assert engine.suggest_many(matrix) == tier_a.suggest_many(matrix)
        report = engine.last_report
        assert report.n_queries == 10 and report.n_faulted == 0
        assert report.tiers_used == {"0:approximate": 10}

    def test_single_query_failover_records_tier(self, serving_setup):
        _, _, tier_a, tier_b = serving_setup
        chaotic = ChaosEngine(tier_a, failure_rate=1.0, seed=0)
        engine = FallbackEngine.from_engines([chaotic, tier_b]).preprocess()
        function = LinearScoringFunction((0.4, 0.3, 0.3))
        result = engine.suggest(function)
        assert result == tier_b.suggest(function)
        assert engine.last_record.tier == "1:approximate"
        assert engine.last_record.faulted
        assert engine.last_record.errors[0].error_type == "InjectedFault"

    def test_exhausted_chain_raises_with_structured_attempts(self, serving_setup):
        _, _, tier_a, tier_b = serving_setup
        engine = FallbackEngine.from_engines(
            [ChaosEngine(tier_a, failure_rate=1.0), ChaosEngine(tier_b, failure_rate=1.0)]
        ).preprocess()
        with pytest.raises(FallbackExhaustedError) as excinfo:
            engine.suggest(LinearScoringFunction((0.4, 0.3, 0.3)))
        assert len(excinfo.value.attempts) == 2
        assert {attempt.tier for attempt in excinfo.value.attempts} == {
            "0:approximate",
            "1:approximate",
        }
        assert engine.telemetry.n_unanswered == 1

    def test_batch_isolates_poisoned_queries(self, serving_setup):
        _, _, tier_a, tier_b = serving_setup
        chaotic = ChaosEngine(tier_a, failure_rate=0.3, seed=7)
        engine = FallbackEngine.from_engines([chaotic, tier_b]).preprocess()
        matrix = _queries(20, seed=1)
        poisoned = [row for row in range(20) if chaotic.would_fail(matrix[row])]
        assert poisoned, "seed must poison at least one query for this test"
        results = engine.suggest_many(matrix)
        expected_a = tier_a.suggest_many(matrix)
        expected_b = tier_b.suggest_many(matrix)
        for row, result in enumerate(results):
            assert not isinstance(result, QueryFailure)
            if row in poisoned:
                assert result == expected_b[row]
                assert engine.last_report.records[row].tier == "1:approximate"
            else:
                assert result == expected_a[row]
                assert engine.last_report.records[row].tier == "0:approximate"
        assert engine.last_report.n_faulted == len(poisoned)

    def test_unanswerable_queries_become_failure_records(self, serving_setup):
        _, _, tier_a, tier_b = serving_setup
        engine = FallbackEngine.from_engines(
            [
                ChaosEngine(tier_a, failure_rate=1.0, seed=1),
                ChaosEngine(tier_b, failure_rate=1.0, seed=2),
            ]
        ).preprocess()
        matrix = _queries(4)
        results = engine.suggest_many(matrix)
        assert all(isinstance(result, QueryFailure) for result in results)
        for row, failure in enumerate(results):
            assert failure.index == row
            assert failure.weights == tuple(matrix[row].tolist())
            assert [error.tier for error in failure.errors] == [
                "0:approximate",
                "1:approximate",
            ]
            assert not failure.answered
        assert engine.last_report.n_unanswered == 4

    def test_invalid_weight_rows_fail_per_query_not_per_batch(self, serving_setup):
        _, _, tier_a, tier_b = serving_setup
        engine = FallbackEngine.from_engines([tier_a, tier_b]).preprocess()
        matrix = _queries(4)
        matrix[2] = [-1.0, 0.5, 0.5]  # negative weight: invalid scoring function
        results = engine.suggest_many(matrix)
        expected = tier_a.suggest_many(np.delete(matrix, 2, axis=0))
        assert [results[0], results[1], results[3]] == expected
        assert isinstance(results[2], QueryFailure)
        assert results[2].errors[0].tier == "query"

    def test_wrong_shape_still_raises(self, serving_setup):
        _, _, tier_a, _ = serving_setup
        engine = FallbackEngine.from_engines([tier_a]).preprocess()
        with pytest.raises(ConfigurationError):
            engine.suggest_many(np.ones((3, 5)))

    def test_no_satisfactory_function_passes_through(self, shared_compas_3d):
        impossible = CallableOracle(lambda ordering, dataset: False, "never")
        tier = create_engine(shared_compas_3d, impossible, TIER_B).preprocess()
        engine = FallbackEngine.from_engines([tier, tier]).preprocess()
        with pytest.raises(NoSatisfactoryFunctionError):
            engine.suggest(LinearScoringFunction((0.4, 0.3, 0.3)))
        with pytest.raises(NoSatisfactoryFunctionError):
            engine.suggest_many(_queries(3))

    def test_per_query_deadline_advances_the_chain(self, serving_setup):
        _, _, tier_a, tier_b = serving_setup
        clock = FakeClock()
        slow = ChaosEngine(tier_a, latency=2.0, clock=clock)
        engine = FallbackEngine(
            tier_a.dataset,
            tier_a.oracle,
            FallbackConfig(per_query_deadline=1.0),
            engines=(slow, tier_b),
            clock=clock,
        ).preprocess()
        function = LinearScoringFunction((0.4, 0.3, 0.3))
        result = engine.suggest(function)
        assert result == tier_b.suggest(function)
        assert engine.last_record.errors[0].error_type == "DeadlineExceeded"


# --------------------------------------------------------------------------- #
# preprocessing leniency
# --------------------------------------------------------------------------- #
class TestLenientPreprocess:
    def test_broken_tier_is_dropped_when_lenient(self, serving_setup):
        dataset, oracle, tier_a, _ = serving_setup
        engine = FallbackEngine.from_engines(
            [tier_a, AlwaysBrokenEngine(dataset, oracle)]
        ).preprocess()
        assert engine.active_tiers == ("0:approximate",)
        assert engine.preprocess_errors[0].tier == "1:broken"
        matrix = _queries(3)
        assert engine.suggest_many(matrix) == tier_a.suggest_many(matrix)

    def test_strict_mode_raises(self, serving_setup):
        dataset, oracle, tier_a, _ = serving_setup
        engine = FallbackEngine.from_engines(
            [tier_a, AlwaysBrokenEngine(dataset, oracle)], lenient_preprocess=False
        )
        with pytest.raises(RuntimeError, match="never comes up"):
            engine.preprocess()

    def test_all_tiers_broken_raises_even_when_lenient(self, serving_setup):
        dataset, oracle, _, _ = serving_setup
        engine = FallbackEngine.from_engines(
            [AlwaysBrokenEngine(dataset, oracle), AlwaysBrokenEngine(dataset, oracle)]
        )
        with pytest.raises(ConfigurationError, match="every tier"):
            engine.preprocess()


# --------------------------------------------------------------------------- #
# error budget and session attribution
# --------------------------------------------------------------------------- #
class TestErrorBudget:
    def test_budget_report_from_telemetry(self, serving_setup):
        _, _, tier_a, tier_b = serving_setup
        engine = FallbackEngine.from_engines(
            [ChaosEngine(tier_a, failure_rate=0.3, seed=7), tier_b]
        ).preprocess()
        engine.suggest_many(_queries(20, seed=1))
        report = error_budget_report(engine, budget=0.05)
        assert report.n_queries == 20
        assert report.n_unanswered == 0 and report.within_budget
        assert report.failover_rate > 0
        assert sum(report.answered_by.values()) == 20
        assert report.as_dict()["error_rate"] == 0.0

    def test_blown_budget_is_reported(self, serving_setup):
        _, _, tier_a, _ = serving_setup
        engine = FallbackEngine.from_engines(
            [ChaosEngine(tier_a, failure_rate=1.0)]
        ).preprocess()
        engine.suggest_many(_queries(5))
        report = error_budget_report(engine, budget=0.5)
        assert report.error_rate == 1.0
        assert not report.within_budget
        assert report.budget_remaining == pytest.approx(-0.5)

    def test_engines_without_telemetry_are_rejected(self, serving_setup):
        _, _, tier_a, _ = serving_setup
        with pytest.raises(ConfigurationError, match="telemetry"):
            error_budget_report(tier_a)

    def test_invalid_budget_rejected(self, serving_setup):
        _, _, tier_a, _ = serving_setup
        engine = FallbackEngine.from_engines([tier_a]).preprocess()
        with pytest.raises(ConfigurationError):
            error_budget_report(engine, budget=1.5)


class TestSessionTierAttribution:
    def test_designer_accepts_fallback_config(self, serving_setup):
        dataset, oracle, _, _ = serving_setup
        designer = FairRankingDesigner(
            dataset, oracle, FallbackConfig(tiers=(TIER_B,))
        ).preprocess()
        assert designer.mode == "fallback"
        result = designer.suggest([0.4, 0.3, 0.3])
        assert result.function.dimension == 3

    def test_session_records_answering_tier(self, serving_setup):
        dataset, oracle, tier_a, tier_b = serving_setup
        designer = FairRankingDesigner._from_engine(
            FallbackEngine.from_engines(
                [ChaosEngine(tier_a, failure_rate=1.0), tier_b]
            ).preprocess()
        )
        session = DesignSession(designer)
        record = session.propose([0.4, 0.3, 0.3])
        assert record.tier == "1:approximate"
        assert record.as_dict()["tier"] == "1:approximate"
        accepted = session.accept()
        assert accepted.tier == "1:approximate"  # acceptance preserves the tier

    def test_session_batch_records_tiers(self, serving_setup):
        dataset, oracle, tier_a, tier_b = serving_setup
        chaotic = ChaosEngine(tier_a, failure_rate=0.3, seed=7)
        designer = FairRankingDesigner._from_engine(
            FallbackEngine.from_engines([chaotic, tier_b]).preprocess()
        )
        session = DesignSession(designer)
        matrix = _queries(8, seed=1)
        records = session.propose_many(matrix)
        assert len(records) == 8
        for row, record in enumerate(records):
            expected = "1:approximate" if chaotic.would_fail(matrix[row]) else "0:approximate"
            assert record.tier == expected

    def test_single_pipeline_sessions_have_no_tier(self, serving_setup):
        _, _, tier_a, _ = serving_setup
        session = DesignSession(FairRankingDesigner._from_engine(tier_a))
        record = session.propose([0.4, 0.3, 0.3])
        assert record.tier is None
        assert record.as_dict()["tier"] is None
