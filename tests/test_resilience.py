"""Tests for the resilience policies and the fault-tolerant oracle wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import (
    ConfigurationError,
    OracleError,
    OracleTimeoutError,
    OracleUnavailableError,
    TransientOracleError,
)
from repro.fairness.oracle import CallableOracle, CountingOracle, FairnessOracle
from repro.fairness.proportional import ProportionalOracle
from repro.resilience import (
    CircuitBreaker,
    FakeClock,
    OracleCallStats,
    ResilientOracle,
    RetryPolicy,
    is_transient_failure,
)


class FlakyOracle(FairnessOracle):
    """Fails the first ``fail_times`` calls, then answers True."""

    def __init__(self, fail_times: int, error: BaseException | None = None) -> None:
        self.fail_times = fail_times
        self.calls = 0
        self.error = error if error is not None else TransientOracleError("blip")

    def is_satisfactory(self, ordering, dataset) -> bool:
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.error
        return True


class SlowOracle(FairnessOracle):
    """Advances a FakeClock by ``seconds`` per call, then answers True."""

    def __init__(self, clock: FakeClock, seconds: float) -> None:
        self.clock = clock
        self.seconds = seconds
        self.calls = 0

    def is_satisfactory(self, ordering, dataset) -> bool:
        self.calls += 1
        self.clock.advance(self.seconds)
        return True


ORDERING = np.array([0, 1, 2])


# --------------------------------------------------------------------------- #
# retry policy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert policy.schedule() == (0.1, 0.2, 0.4)

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=10.0, max_delay=3.0, jitter=0.0
        )
        assert max(policy.schedule()) == 3.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.2, seed=42)
        again = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.2, seed=42)
        assert policy.schedule() == again.schedule()
        for attempt, delay in enumerate(policy.schedule(), start=1):
            bare = RetryPolicy(
                max_attempts=5, base_delay=0.1, jitter=0.0
            ).backoff(attempt)
            assert bare * 0.8 <= delay <= bare * 1.2

    def test_different_seeds_give_different_schedules(self):
        a = RetryPolicy(jitter=0.3, seed=1).schedule()
        b = RetryPolicy(jitter=0.3, seed=2).schedule()
        assert a != b

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff(0)


# --------------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_at_threshold_and_rejects(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_time=10.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.n_opens == 1

    def test_half_opens_after_cooldown_and_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half_open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.consecutive_failures == 0

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_time=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        breaker.record_failure()  # one probe failure re-opens, threshold or not
        assert breaker.state == "open"
        assert breaker.n_opens == 2

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(recovery_time=-1.0)


class TestFakeClock:
    def test_advances_monotonically(self):
        clock = FakeClock(start=10.0)
        assert clock() == 10.0
        clock.advance(2.5)
        assert clock() == 12.5
        with pytest.raises(ConfigurationError):
            clock.advance(-1.0)


# --------------------------------------------------------------------------- #
# classification
# --------------------------------------------------------------------------- #
class TestClassification:
    def test_transient_types(self):
        assert is_transient_failure(TransientOracleError("x"))
        assert is_transient_failure(OracleTimeoutError("x"))
        assert is_transient_failure(TimeoutError())
        assert is_transient_failure(ConnectionError())
        assert is_transient_failure(OSError())

    def test_permanent_types(self):
        assert not is_transient_failure(OracleError("misconfigured"))
        assert not is_transient_failure(ValueError("bad shape"))
        assert not is_transient_failure(KeyError("missing"))


# --------------------------------------------------------------------------- #
# the resilient oracle
# --------------------------------------------------------------------------- #
class TestResilientOracle:
    def test_happy_path_forwards_verdict(self):
        inner = FlakyOracle(fail_times=0)
        oracle = ResilientOracle(inner, sleep=lambda _s: None)
        assert oracle.is_satisfactory(ORDERING, None) is True
        assert oracle.stats.calls == 1 and oracle.stats.retries == 0
        assert oracle.describe().startswith("resilient(")

    def test_transient_failures_are_retried(self):
        inner = FlakyOracle(fail_times=2)
        slept: list[float] = []
        oracle = ResilientOracle(
            inner,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
            sleep=slept.append,
        )
        assert oracle.is_satisfactory(ORDERING, None) is True
        assert inner.calls == 3
        assert oracle.stats.retries == 2
        assert slept == [0.01, 0.02]

    def test_retry_exhaustion_raises_typed_error_with_cause(self):
        inner = FlakyOracle(fail_times=10)
        oracle = ResilientOracle(
            inner,
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
            circuit_breaker=CircuitBreaker(failure_threshold=100, clock=FakeClock()),
            sleep=lambda _s: None,
        )
        with pytest.raises(OracleUnavailableError) as excinfo:
            oracle.is_satisfactory(ORDERING, None)
        assert isinstance(excinfo.value.last_error, TransientOracleError)
        assert oracle.stats.exhausted == 1
        assert inner.calls == 3

    def test_permanent_failures_surface_immediately(self):
        inner = FlakyOracle(fail_times=10, error=OracleError("contract violation"))
        oracle = ResilientOracle(inner, sleep=lambda _s: None)
        with pytest.raises(OracleError, match="contract violation"):
            oracle.is_satisfactory(ORDERING, None)
        assert inner.calls == 1
        assert oracle.stats.permanent_failures == 1

    def test_deadline_exceeded_counts_as_timeout_and_retries(self):
        clock = FakeClock()
        inner = SlowOracle(clock, seconds=2.0)
        oracle = ResilientOracle(
            inner,
            deadline=1.0,
            retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
            circuit_breaker=CircuitBreaker(failure_threshold=100, clock=clock),
            clock=clock,
            sleep=clock.advance,
        )
        with pytest.raises(OracleUnavailableError) as excinfo:
            oracle.is_satisfactory(ORDERING, None)
        assert isinstance(excinfo.value.last_error, OracleTimeoutError)
        assert oracle.stats.timeouts == 2
        assert inner.calls == 2

    def test_deadline_not_tripped_by_fast_calls(self):
        clock = FakeClock()
        inner = SlowOracle(clock, seconds=0.1)
        oracle = ResilientOracle(inner, deadline=1.0, clock=clock, sleep=clock.advance)
        assert oracle.is_satisfactory(ORDERING, None) is True
        assert oracle.stats.timeouts == 0

    def test_open_circuit_rejects_without_calling_inner(self):
        clock = FakeClock()
        inner = FlakyOracle(fail_times=10)
        oracle = ResilientOracle(
            inner,
            retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
            circuit_breaker=CircuitBreaker(
                failure_threshold=2, recovery_time=30.0, clock=clock
            ),
            clock=clock,
            sleep=clock.advance,
        )
        with pytest.raises(OracleUnavailableError):
            oracle.is_satisfactory(ORDERING, None)  # two failures trip the breaker
        calls_before = inner.calls
        with pytest.raises(OracleUnavailableError):
            oracle.is_satisfactory(ORDERING, None)
        assert inner.calls == calls_before  # rejected at the breaker
        assert oracle.stats.rejected_open >= 1

    def test_circuit_recovers_after_cooldown(self):
        clock = FakeClock()
        inner = FlakyOracle(fail_times=2)
        oracle = ResilientOracle(
            inner,
            retry_policy=RetryPolicy(max_attempts=1, jitter=0.0),
            circuit_breaker=CircuitBreaker(
                failure_threshold=2, recovery_time=10.0, clock=clock
            ),
            clock=clock,
            sleep=clock.advance,
        )
        for _ in range(2):
            with pytest.raises(OracleUnavailableError):
                oracle.is_satisfactory(ORDERING, None)
        assert not oracle.circuit_breaker.allow()
        clock.advance(10.0)
        assert oracle.is_satisfactory(ORDERING, None) is True
        assert oracle.circuit_breaker.state == "closed"

    def test_custom_classifier_overrides_default(self):
        inner = FlakyOracle(fail_times=1, error=ValueError("transient here"))
        oracle = ResilientOracle(
            inner,
            classify=lambda error: isinstance(error, ValueError),
            retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
            sleep=lambda _s: None,
        )
        assert oracle.is_satisfactory(ORDERING, None) is True
        assert inner.calls == 2

    def test_requires_a_fairness_oracle(self):
        with pytest.raises(OracleError):
            ResilientOracle(lambda ordering, dataset: True)  # type: ignore[arg-type]

    def test_stats_snapshot_is_json_compatible(self):
        stats = OracleCallStats(calls=3, successes=2)
        snapshot = stats.as_dict()
        assert snapshot["calls"] == 3 and snapshot["successes"] == 2

    def test_batched_forwarding_matches_scalar(self, small_compas_3d):
        oracle = ProportionalOracle.at_most_share_plus_slack(
            small_compas_3d, "race", "African-American", k=0.3, slack=0.10
        )
        resilient = ResilientOracle(oracle, sleep=lambda _s: None)
        assert resilient.batched_capable()
        rng = np.random.default_rng(3)
        orderings = np.stack(
            [rng.permutation(small_compas_3d.n_items) for _ in range(4)]
        )
        verdicts = resilient.is_satisfactory_many(orderings, small_compas_3d)
        expected = [
            oracle.is_satisfactory(row, small_compas_3d) for row in orderings
        ]
        assert list(verdicts) == expected

    def test_composes_with_counting_oracle(self):
        inner = CountingOracle(FlakyOracle(fail_times=1))
        oracle = ResilientOracle(
            inner,
            retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
            sleep=lambda _s: None,
        )
        assert oracle.is_satisfactory(ORDERING, None) is True
        assert inner.calls == 2  # counting sits inside: physical attempts


# --------------------------------------------------------------------------- #
# CallableOracle verdict coercion (the scalar-coercion satellite)
# --------------------------------------------------------------------------- #
class TestCallableOracleCoercion:
    def _dataset(self) -> Dataset:
        return Dataset(
            scores=np.array([[1.0, 2.0], [2.0, 1.0]]),
            scoring_attributes=["x", "y"],
            name="tiny",
        )

    def test_accepts_python_and_numpy_bool(self):
        dataset = self._dataset()
        assert CallableOracle(lambda o, d: True).is_satisfactory(ORDERING, dataset)
        assert CallableOracle(lambda o, d: np.bool_(True)).is_satisfactory(
            ORDERING, dataset
        )

    def test_unwraps_zero_dim_arrays(self):
        dataset = self._dataset()
        oracle = CallableOracle(lambda o, d: np.asarray(o[0] == 0).all())
        assert oracle.is_satisfactory(np.array([0, 1]), dataset) is True
        assert oracle.is_satisfactory(np.array([1, 0]), dataset) is False

    def test_accepts_zero_one_integers(self):
        dataset = self._dataset()
        assert CallableOracle(lambda o, d: 1).is_satisfactory(ORDERING, dataset)
        assert not CallableOracle(lambda o, d: np.int64(0)).is_satisfactory(
            ORDERING, dataset
        )

    def test_rejects_multi_element_arrays_with_clear_error(self):
        oracle = CallableOracle(lambda o, d: np.array([True, False]), "vectorised")
        with pytest.raises(OracleError, match="shape"):
            oracle.is_satisfactory(ORDERING, self._dataset())

    def test_rejects_none_and_floats_naming_the_type(self):
        dataset = self._dataset()
        with pytest.raises(OracleError, match="NoneType"):
            CallableOracle(lambda o, d: None).is_satisfactory(ORDERING, dataset)
        with pytest.raises(OracleError, match="float"):
            CallableOracle(lambda o, d: 0.7).is_satisfactory(ORDERING, dataset)
        with pytest.raises(OracleError):
            CallableOracle(lambda o, d: 2).is_satisfactory(ORDERING, dataset)
