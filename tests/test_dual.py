"""Tests for ordering exchanges: 2-D exchange angles and HYPERPOLAR.

The key invariant (which the whole paper rests on) is checked property-style:
on either side of a pair's ordering exchange, the pair's relative order under
the corresponding scoring functions flips.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, example, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.dataset import Dataset
from repro.exceptions import GeometryError
from repro.geometry.angles import to_weights
from repro.geometry.dual import (
    build_exchange_angles_2d,
    build_exchange_hyperplanes,
    exchange_angle_2d,
    exchange_normal,
    has_exchange,
    hyperpolar,
)


def item_vectors(dimension: int):
    return arrays(
        float,
        dimension,
        elements=st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
    )


class TestExchangeNormal:
    def test_is_difference(self):
        normal = exchange_normal(np.array([1.0, 2.0]), np.array([3.0, 1.0]))
        assert np.allclose(normal, [-2.0, 1.0])

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            exchange_normal(np.array([1.0]), np.array([1.0, 2.0]))


class TestHasExchange:
    def test_dominated_pair_has_no_exchange(self):
        assert not has_exchange(np.array([2.0, 2.0]), np.array([1.0, 1.0]))

    def test_identical_items_have_no_exchange(self):
        assert not has_exchange(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_incomparable_pair_has_exchange(self):
        assert has_exchange(np.array([1.0, 2.0]), np.array([2.0, 1.0]))


class TestExchangeAngle2D:
    def test_paper_example(self):
        """The exchange of (1,2) and (2,1) is at 45 degrees (paper Figure 2)."""
        angle = exchange_angle_2d(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
        assert angle == pytest.approx(math.pi / 4)

    def test_requires_2d(self):
        with pytest.raises(GeometryError):
            exchange_angle_2d(np.array([1.0, 2.0, 3.0]), np.array([2.0, 1.0, 3.0]))

    def test_dominated_pair_raises(self):
        with pytest.raises(GeometryError):
            exchange_angle_2d(np.array([2.0, 2.0]), np.array([1.0, 1.0]))

    @given(item_vectors(2), item_vectors(2))
    @settings(max_examples=100, deadline=None)
    def test_order_flips_across_the_exchange(self, first, second):
        assume(has_exchange(first, second))
        angle = exchange_angle_2d(first, second)
        assume(1e-6 < angle < math.pi / 2 - 1e-6)
        delta = min(angle, math.pi / 2 - angle) / 2
        below = np.array([math.cos(angle - delta), math.sin(angle - delta)])
        above = np.array([math.cos(angle + delta), math.sin(angle + delta)])
        sign_below = np.sign(np.dot(below, first - second))
        sign_above = np.sign(np.dot(above, first - second))
        assume(sign_below != 0 and sign_above != 0)
        assert sign_below == -sign_above

    @given(item_vectors(2), item_vectors(2))
    @settings(max_examples=100, deadline=None)
    def test_scores_tie_at_the_exchange(self, first, second):
        assume(has_exchange(first, second))
        angle = exchange_angle_2d(first, second)
        weights = np.array([math.cos(angle), math.sin(angle)])
        assert np.dot(weights, first) == pytest.approx(np.dot(weights, second), rel=1e-6, abs=1e-9)


class TestHyperpolar:
    def test_requires_md(self):
        with pytest.raises(GeometryError):
            hyperpolar(np.array([1.0, 2.0]), np.array([2.0, 1.0]))

    def test_dominated_pair_raises(self):
        with pytest.raises(GeometryError):
            hyperpolar(np.array([2.0, 2.0, 2.0]), np.array([1.0, 1.0, 1.0]))

    def test_label_is_preserved(self):
        plane = hyperpolar(np.array([1.0, 2.0, 3.0]), np.array([2.0, 4.0, 1.0]), label=(0, 1))
        assert plane.label == (0, 1)

    def test_paper_figure8_pair(self):
        """The exchange of t1=(1,2,3) and t2=(2,4,1) from Figure 7/8 is representable."""
        plane = hyperpolar(np.array([1.0, 2.0, 3.0]), np.array([2.0, 4.0, 1.0]))
        assert plane.dimension == 2

    @given(item_vectors(3), item_vectors(3))
    # Near-axis pair whose chord approximation reaches ~0.36 · scale.
    @example(np.array([1.0, 0.125, 0.1875]), np.array([0.125, 1.0, 0.125]))
    @settings(max_examples=60, deadline=None)
    def test_points_on_the_hyperplane_give_near_ties(self, first, second):
        """Angle points on the HYPERPOLAR hyperplane map to rays scoring the pair nearly equally."""
        assume(has_exchange(first, second))
        plane = hyperpolar(first, second)
        coefficients = plane.as_array()
        # Construct a point exactly on the plane inside the legal box when possible.
        base = np.full(plane.dimension, 0.5)
        direction = coefficients / np.dot(coefficients, coefficients)
        point = base + (1.0 - float(np.dot(coefficients, base))) * direction
        assume(np.all(point >= 0.0) and np.all(point <= math.pi / 2))
        weights = to_weights(point)
        score_gap = abs(float(np.dot(weights, first - second)))
        scale = max(np.linalg.norm(first), np.linalg.norm(second))
        # The angle-space hyperplane is a chord approximation of the curved
        # exchange locus, so ties are approximate but must be small.  The
        # bound is loose: adversarial near-axis pairs (e.g. (1, .125, .1875)
        # vs (.125, 1, .125)) reach ~0.36 · scale with the seed construction.
        assert score_gap <= 0.45 * scale


class TestBatchConstruction:
    def test_build_exchange_angles_counts(self, paper_2d_dataset):
        exchanges = build_exchange_angles_2d(paper_2d_dataset)
        # All 5 items of Figure 3 are mutually non-dominated: C(5,2)=10 exchanges.
        assert len(exchanges) == 10
        assert all(0.0 <= angle <= math.pi / 2 for angle, _, _ in exchanges)

    def test_build_exchange_angles_requires_2d(self, paper_3d_dataset):
        with pytest.raises(GeometryError):
            build_exchange_angles_2d(paper_3d_dataset)

    def test_build_exchange_hyperplanes(self, paper_3d_dataset):
        hyperplanes = build_exchange_hyperplanes(paper_3d_dataset)
        labels = {plane.label for plane in hyperplanes}
        assert all(i < j for i, j in labels)
        # t3=(5.3,1,6) vs t1=(1,2,3): t3 does not dominate t1 (1 < 2 on y), so
        # every pair except dominated ones appears.
        assert len(hyperplanes) >= 4

    def test_build_exchange_hyperplanes_subset(self, paper_3d_dataset):
        subset = build_exchange_hyperplanes(paper_3d_dataset, item_indices=np.array([0, 1]))
        assert len(subset) == 1
        assert subset[0].label == (0, 1)

    def test_build_exchange_hyperplanes_requires_md(self, paper_2d_dataset):
        with pytest.raises(GeometryError):
            build_exchange_hyperplanes(paper_2d_dataset)

    def test_dominated_pairs_are_skipped(self):
        scores = np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0], [3.0, 1.0, 2.0]])
        dataset = Dataset(scores=scores, scoring_attributes=["a", "b", "c"])
        labels = {plane.label for plane in build_exchange_hyperplanes(dataset)}
        assert (0, 1) not in labels  # item 1 dominates item 0
        assert (1, 2) in labels
