"""Tests for ordering exchanges: 2-D exchange angles and HYPERPOLAR.

The key invariant (which the whole paper rests on) is checked property-style:
on either side of a pair's ordering exchange, the pair's relative order under
the corresponding scoring functions flips.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, example, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.dataset import Dataset
from repro.exceptions import GeometryError
from repro.geometry.angles import to_weights
from repro.geometry.dual import (
    build_exchange_angles_2d,
    build_exchange_hyperplanes,
    build_exchange_hyperplanes_reference,
    exchange_angle_2d,
    exchange_normal,
    has_exchange,
    hyperplanes_for_dataset,
    hyperpolar,
    hyperpolar_many,
)


def item_vectors(dimension: int):
    return arrays(
        float,
        dimension,
        elements=st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
    )


class TestExchangeNormal:
    def test_is_difference(self):
        normal = exchange_normal(np.array([1.0, 2.0]), np.array([3.0, 1.0]))
        assert np.allclose(normal, [-2.0, 1.0])

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            exchange_normal(np.array([1.0]), np.array([1.0, 2.0]))


class TestHasExchange:
    def test_dominated_pair_has_no_exchange(self):
        assert not has_exchange(np.array([2.0, 2.0]), np.array([1.0, 1.0]))

    def test_identical_items_have_no_exchange(self):
        assert not has_exchange(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_incomparable_pair_has_exchange(self):
        assert has_exchange(np.array([1.0, 2.0]), np.array([2.0, 1.0]))


class TestExchangeAngle2D:
    def test_paper_example(self):
        """The exchange of (1,2) and (2,1) is at 45 degrees (paper Figure 2)."""
        angle = exchange_angle_2d(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
        assert angle == pytest.approx(math.pi / 4)

    def test_requires_2d(self):
        with pytest.raises(GeometryError):
            exchange_angle_2d(np.array([1.0, 2.0, 3.0]), np.array([2.0, 1.0, 3.0]))

    def test_dominated_pair_raises(self):
        with pytest.raises(GeometryError):
            exchange_angle_2d(np.array([2.0, 2.0]), np.array([1.0, 1.0]))

    @given(item_vectors(2), item_vectors(2))
    @settings(max_examples=100, deadline=None)
    def test_order_flips_across_the_exchange(self, first, second):
        assume(has_exchange(first, second))
        angle = exchange_angle_2d(first, second)
        assume(1e-6 < angle < math.pi / 2 - 1e-6)
        delta = min(angle, math.pi / 2 - angle) / 2
        below = np.array([math.cos(angle - delta), math.sin(angle - delta)])
        above = np.array([math.cos(angle + delta), math.sin(angle + delta)])
        sign_below = np.sign(np.dot(below, first - second))
        sign_above = np.sign(np.dot(above, first - second))
        assume(sign_below != 0 and sign_above != 0)
        assert sign_below == -sign_above

    @given(item_vectors(2), item_vectors(2))
    @settings(max_examples=100, deadline=None)
    def test_scores_tie_at_the_exchange(self, first, second):
        assume(has_exchange(first, second))
        angle = exchange_angle_2d(first, second)
        weights = np.array([math.cos(angle), math.sin(angle)])
        assert np.dot(weights, first) == pytest.approx(np.dot(weights, second), rel=1e-6, abs=1e-9)


class TestHyperpolar:
    def test_requires_md(self):
        with pytest.raises(GeometryError):
            hyperpolar(np.array([1.0, 2.0]), np.array([2.0, 1.0]))

    def test_dominated_pair_raises(self):
        with pytest.raises(GeometryError):
            hyperpolar(np.array([2.0, 2.0, 2.0]), np.array([1.0, 1.0, 1.0]))

    def test_label_is_preserved(self):
        plane = hyperpolar(np.array([1.0, 2.0, 3.0]), np.array([2.0, 4.0, 1.0]), label=(0, 1))
        assert plane.label == (0, 1)

    def test_paper_figure8_pair(self):
        """The exchange of t1=(1,2,3) and t2=(2,4,1) from Figure 7/8 is representable."""
        plane = hyperpolar(np.array([1.0, 2.0, 3.0]), np.array([2.0, 4.0, 1.0]))
        assert plane.dimension == 2

    @given(item_vectors(3), item_vectors(3))
    # Near-axis pair whose chord approximation reaches ~0.36 · scale.
    @example(np.array([1.0, 0.125, 0.1875]), np.array([0.125, 1.0, 0.125]))
    @settings(max_examples=60, deadline=None)
    def test_points_on_the_hyperplane_give_near_ties(self, first, second):
        """Angle points on the HYPERPOLAR hyperplane map to rays scoring the pair nearly equally."""
        assume(has_exchange(first, second))
        plane = hyperpolar(first, second)
        coefficients = plane.as_array()
        # Construct a point exactly on the plane inside the legal box when possible.
        base = np.full(plane.dimension, 0.5)
        direction = coefficients / np.dot(coefficients, coefficients)
        point = base + (1.0 - float(np.dot(coefficients, base))) * direction
        assume(np.all(point >= 0.0) and np.all(point <= math.pi / 2))
        weights = to_weights(point)
        score_gap = abs(float(np.dot(weights, first - second)))
        scale = max(np.linalg.norm(first), np.linalg.norm(second))
        # The angle-space hyperplane is a chord approximation of the curved
        # exchange locus, so ties are approximate but must be small.  The
        # bound is loose: adversarial near-axis pairs (e.g. (1, .125, .1875)
        # vs (.125, 1, .125)) reach ~0.36 · scale with the seed construction.
        assert score_gap <= 0.45 * scale


class TestBatchConstruction:
    def test_build_exchange_angles_counts(self, paper_2d_dataset):
        exchanges = build_exchange_angles_2d(paper_2d_dataset)
        # All 5 items of Figure 3 are mutually non-dominated: C(5,2)=10 exchanges.
        assert len(exchanges) == 10
        assert all(0.0 <= angle <= math.pi / 2 for angle, _, _ in exchanges)

    def test_build_exchange_angles_requires_2d(self, paper_3d_dataset):
        with pytest.raises(GeometryError):
            build_exchange_angles_2d(paper_3d_dataset)

    def test_build_exchange_hyperplanes(self, paper_3d_dataset):
        hyperplanes = build_exchange_hyperplanes(paper_3d_dataset)
        labels = {plane.label for plane in hyperplanes}
        assert all(i < j for i, j in labels)
        # t3=(5.3,1,6) vs t1=(1,2,3): t3 does not dominate t1 (1 < 2 on y), so
        # every pair except dominated ones appears.
        assert len(hyperplanes) >= 4

    def test_build_exchange_hyperplanes_subset(self, paper_3d_dataset):
        subset = build_exchange_hyperplanes(paper_3d_dataset, item_indices=np.array([0, 1]))
        assert len(subset) == 1
        assert subset[0].label == (0, 1)

    def test_build_exchange_hyperplanes_requires_md(self, paper_2d_dataset):
        with pytest.raises(GeometryError):
            build_exchange_hyperplanes(paper_2d_dataset)

    def test_dominated_pairs_are_skipped(self):
        scores = np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0], [3.0, 1.0, 2.0]])
        dataset = Dataset(scores=scores, scoring_attributes=["a", "b", "c"])
        labels = {plane.label for plane in build_exchange_hyperplanes(dataset)}
        assert (0, 1) not in labels  # item 1 dominates item 0
        assert (1, 2) in labels


def uniform_dataset(n: int, d: int, seed: int) -> Dataset:
    rng = np.random.default_rng(seed)
    return Dataset(
        scores=rng.uniform(0.05, 1.0, size=(n, d)),
        scoring_attributes=[f"a{k}" for k in range(d)],
    )


class TestHyperpolarMany:
    """The batched construction must be bit-identical to the scalar HYPERPOLAR."""

    @pytest.mark.perf_smoke
    @pytest.mark.parametrize("dimension", [3, 4, 5])
    def test_bit_identical_to_scalar_reference(self, dimension):
        dataset = uniform_dataset(40, dimension, seed=dimension)
        batched = hyperplanes_for_dataset(dataset, method="batched")
        scalar = hyperplanes_for_dataset(dataset, method="scalar")
        reference = build_exchange_hyperplanes_reference(dataset)
        assert len(batched) > 0
        # Hyperplane is a frozen dataclass: == compares the exact coefficient
        # tuples and labels, so this asserts bit-identity, not approximation.
        assert batched == scalar
        assert batched == reference

    @pytest.mark.perf_smoke
    def test_chunked_enumeration_is_invariant(self):
        dataset = uniform_dataset(30, 3, seed=9)
        whole = hyperplanes_for_dataset(dataset)
        chunked = hyperplanes_for_dataset(dataset, pair_chunk_size=4)
        assert whole == chunked

    def test_pairs_drive_labels_and_order(self, paper_3d_dataset):
        scores = paper_3d_dataset.scores
        pairs = np.array([[0, 1], [1, 2]])
        planes = hyperpolar_many(scores, pairs)
        assert [plane.label for plane in planes] == [(0, 1), (1, 2)]
        assert planes[0] == hyperpolar(scores[0], scores[1], label=(0, 1))
        assert planes[1] == hyperpolar(scores[1], scores[2], label=(1, 2))

    def test_explicit_labels_override(self, paper_3d_dataset):
        planes = hyperpolar_many(
            paper_3d_dataset.scores, np.array([[0, 1]]), labels=[(7, 8)]
        )
        assert planes[0].label == (7, 8)

    def test_empty_pairs(self, paper_3d_dataset):
        assert hyperpolar_many(paper_3d_dataset.scores, np.empty((0, 2), dtype=int)) == []

    def test_requires_md(self):
        with pytest.raises(GeometryError):
            hyperpolar_many(np.array([[1.0, 2.0], [2.0, 1.0]]), np.array([[0, 1]]))

    def test_rejects_dominated_pairs(self):
        scores = np.array([[2.0, 2.0, 2.0], [1.0, 1.0, 1.0]])
        with pytest.raises(GeometryError):
            hyperpolar_many(scores, np.array([[0, 1]]))

    def test_rejects_malformed_pairs(self, paper_3d_dataset):
        with pytest.raises(GeometryError):
            hyperpolar_many(paper_3d_dataset.scores, np.array([0, 1]))
        with pytest.raises(GeometryError):
            hyperpolar_many(
                paper_3d_dataset.scores, np.array([[0, 1]]), labels=[(0, 1), (1, 2)]
            )

    def test_unknown_method_raises(self, paper_3d_dataset):
        with pytest.raises(GeometryError):
            hyperplanes_for_dataset(paper_3d_dataset, method="turbo")

    def test_subset_matches_reference(self, paper_3d_dataset):
        indices = np.array([3, 0, 2])
        batched = hyperplanes_for_dataset(paper_3d_dataset, item_indices=indices)
        reference = build_exchange_hyperplanes_reference(
            paper_3d_dataset, item_indices=indices
        )
        assert batched == reference
