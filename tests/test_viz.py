"""Tests for the ASCII chart rendering and CSV export layer (:mod:`repro.viz`)."""

from __future__ import annotations

import csv

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.experiments.harness import SweepResult
from repro.viz import (
    bar_chart,
    histogram_chart,
    line_chart,
    rows_to_csv,
    series_to_csv,
    sparkline,
    sweep_to_csv,
    write_figure_artifacts,
)


def simple_sweep() -> SweepResult:
    sweep = SweepResult(parameter="n")
    first = sweep.series_named("time")
    second = sweep.series_named("count")
    for x, t, c in [(10, 0.1, 5), (20, 0.4, 9), (40, 1.7, 21)]:
        first.add(x, t)
        second.add(x, c)
    return sweep


# --------------------------------------------------------------------------- #
# line charts
# --------------------------------------------------------------------------- #
class TestLineChart:
    def test_contains_title_legend_and_axis_ranges(self):
        chart = line_chart(
            [1, 2, 3], {"squares": [1, 4, 9]}, title="growth", x_label="n", y_label="value"
        )
        assert "growth" in chart
        assert "legend: * squares" in chart
        assert "n: 1 .. 3" in chart

    def test_plot_area_has_requested_size(self):
        chart = line_chart([0, 1], {"y": [0, 1]}, width=30, height=8)
        plot_rows = [line for line in chart.splitlines() if line.startswith("|")]
        assert len(plot_rows) == 8
        assert all(len(row) == 31 for row in plot_rows)  # "|" + width columns

    def test_multiple_series_get_distinct_markers(self):
        chart = line_chart([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "* a" in chart and "o b" in chart

    def test_log_scale_handles_wide_ranges(self):
        chart = line_chart([1, 2, 3], {"y": [0.001, 1.0, 1000.0]}, log_y=True)
        assert "(log)" in chart

    def test_log_scale_clamps_non_positive_values(self):
        chart = line_chart([1, 2], {"y": [0.0, 10.0]}, log_y=True)
        assert "|" in chart

    def test_constant_series_is_rendered(self):
        chart = line_chart([1, 2, 3], {"y": [5.0, 5.0, 5.0]})
        assert "*" in chart

    def test_rejects_empty_series(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2, 3], {"y": [1, 2]})

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            line_chart([1], {"y": [1]})

    def test_rejects_tiny_plot_area(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"y": [1, 2]}, width=3, height=2)

    @settings(max_examples=30, deadline=None)
    @given(
        ys=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=30,
        )
    )
    def test_property_every_point_is_drawn_inside_the_grid(self, ys):
        xs = list(range(len(ys)))
        chart = line_chart(xs, {"y": ys}, width=40, height=10)
        plot_rows = [line for line in chart.splitlines() if line.startswith("|")]
        assert len(plot_rows) == 10
        assert sum(row.count("*") for row in plot_rows) >= 1


# --------------------------------------------------------------------------- #
# bar charts, histograms and sparklines
# --------------------------------------------------------------------------- #
class TestBarsAndHistograms:
    def test_bar_lengths_are_proportional(self):
        chart = bar_chart(["small", "large"], [1.0, 2.0], width=40)
        lines = chart.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_zero_values_render_empty_bars(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert chart.count("#") == 0

    def test_bar_chart_validations(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart([], [])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0], width=2)

    def test_histogram_has_requested_bins(self):
        chart = histogram_chart([1, 1, 2, 3, 3, 3], bins=3)
        assert len(chart.splitlines()) == 3

    def test_histogram_validations(self):
        with pytest.raises(ConfigurationError):
            histogram_chart([], bins=3)
        with pytest.raises(ConfigurationError):
            histogram_chart([1.0], bins=0)

    def test_sparkline_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 2, 1])) == 5

    def test_sparkline_constant_input(self):
        assert len(set(sparkline([2.0, 2.0, 2.0]))) == 1

    def test_sparkline_rejects_empty_input(self):
        with pytest.raises(ConfigurationError):
            sparkline([])

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_bar_chart_renders_one_line_per_value(self, values):
        labels = [f"v{i}" for i in range(len(values))]
        assert len(bar_chart(labels, values).splitlines()) == len(values)


# --------------------------------------------------------------------------- #
# CSV export
# --------------------------------------------------------------------------- #
class TestCsvExport:
    def test_rows_to_csv_round_trip(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_rows_to_csv_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ConfigurationError):
            rows_to_csv(tmp_path / "rows.csv", ["a", "b"], [[1]])

    def test_series_to_csv_columns(self, tmp_path):
        path = tmp_path / "series.csv"
        series_to_csv(path, [1, 2], {"y1": [10, 20], "y2": [30, 40]}, x_label="n")
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["n", "y1", "y2"]
        assert rows[1] == ["1", "10", "30"]

    def test_series_to_csv_validations(self, tmp_path):
        with pytest.raises(ConfigurationError):
            series_to_csv(tmp_path / "x.csv", [1, 2], {})
        with pytest.raises(ConfigurationError):
            series_to_csv(tmp_path / "x.csv", [1, 2], {"y": [1]})

    def test_sweep_to_csv(self, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(path, simple_sweep())
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["n", "time", "count"]
        assert len(rows) == 4

    def test_sweep_to_csv_rejects_empty_sweep(self, tmp_path):
        with pytest.raises(ConfigurationError):
            sweep_to_csv(tmp_path / "x.csv", SweepResult(parameter="n"))

    def test_write_figure_artifacts_creates_both_files(self, tmp_path):
        csv_path, txt_path = write_figure_artifacts(
            simple_sweep(), tmp_path / "figures", "fig_test", title="test figure"
        )
        assert csv_path.exists() and txt_path.exists()
        assert "test figure" in txt_path.read_text(encoding="utf-8")
        with open(csv_path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "n"
