"""Tests for angle-space partitions and the CELLPLANE× cell-hyperplane assignment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError, GeometryError
from repro.geometry.angles import HALF_PI, angular_distance_angles
from repro.geometry.cellplane import assign_hyperplanes_to_cells, hyperplanes_through_cell
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.partition import (
    AnglePartition,
    UniformGridPartition,
    cell_gamma,
    theorem6_bound,
)


def angle_points(dimension: int):
    return arrays(
        float, dimension, elements=st.floats(0.0, HALF_PI, allow_nan=False)
    )


class TestGammaAndBound:
    def test_gamma_decreases_with_more_cells(self):
        assert cell_gamma(1000, 3) < cell_gamma(100, 3)

    def test_bound_decreases_with_more_cells(self):
        assert theorem6_bound(10_000, 3) < theorem6_bound(100, 3)

    def test_bound_is_positive(self):
        assert theorem6_bound(1024, 4) > 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            cell_gamma(0, 3)
        with pytest.raises(ConfigurationError):
            theorem6_bound(10, 1)


class TestUniformGridPartition:
    def test_cell_count_reaches_target(self):
        partition = UniformGridPartition(2, 100)
        assert partition.n_cells >= 100

    def test_cells_tile_the_box(self):
        partition = UniformGridPartition(2, 16)
        total_area = sum(np.prod(cell.coordinate_extents()) for cell in partition.cells())
        assert total_area == pytest.approx(HALF_PI**2, rel=1e-9)

    def test_locate_returns_containing_cell(self):
        partition = UniformGridPartition(3, 64)
        rng = np.random.default_rng(0)
        for _ in range(50):
            point = rng.uniform(0, HALF_PI, size=3)
            cell = partition.cell(partition.locate(point))
            assert cell.contains(point)

    def test_locate_handles_boundary(self):
        partition = UniformGridPartition(2, 16)
        top = np.array([HALF_PI, HALF_PI])
        cell = partition.cell(partition.locate(top))
        assert cell.contains(top)

    def test_locate_rejects_out_of_box(self):
        partition = UniformGridPartition(2, 16)
        with pytest.raises(GeometryError):
            partition.locate(np.array([-0.5, 0.1]))

    def test_neighbors_are_adjacent(self):
        partition = UniformGridPartition(2, 16)
        for index in range(partition.n_cells):
            cell = partition.cell(index)
            for neighbor_index in partition.neighbors(index):
                neighbor = partition.cell(neighbor_index)
                gap = np.maximum(
                    np.asarray(cell.low) - np.asarray(neighbor.high),
                    np.asarray(neighbor.low) - np.asarray(cell.high),
                )
                assert np.all(gap <= 1e-12)

    def test_corner_cell_has_fewer_neighbors(self):
        partition = UniformGridPartition(2, 16)
        corner = partition.locate(np.array([0.0, 0.0]))
        middle = partition.locate(np.array([HALF_PI / 2, HALF_PI / 2]))
        assert len(partition.neighbors(corner)) < len(partition.neighbors(middle))

    @given(angle_points(2))
    @settings(max_examples=60, deadline=None)
    def test_cell_diameter_bound_holds(self, point):
        partition = UniformGridPartition(2, 64)
        cell = partition.cell(partition.locate(point))
        center = cell.center()
        if not np.any(center > 0) or not np.any(point > 0):
            return
        assert angular_distance_angles(point, center) <= partition.max_cell_diameter() + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            UniformGridPartition(0, 10)
        with pytest.raises(ConfigurationError):
            UniformGridPartition(2, 0)


class TestAnglePartition:
    def test_cells_cover_random_points(self):
        partition = AnglePartition(2, 200)
        rng = np.random.default_rng(1)
        for _ in range(50):
            point = rng.uniform(0, HALF_PI, size=2)
            cell = partition.cell(partition.locate(point))
            assert cell.contains(point)

    def test_adaptive_rows_are_wider_near_the_pole(self):
        """Cells whose prefix angle is near 0 (small sin) get wider second-axis ranges."""
        partition = AnglePartition(2, 400)
        cells = partition.cells()
        near_pole = [c for c in cells if c.low[0] == 0.0]
        far_from_pole = [c for c in cells if c.high[0] == pytest.approx(HALF_PI)]
        mean_width_near = np.mean([c.coordinate_extents()[1] for c in near_pole])
        mean_width_far = np.mean([c.coordinate_extents()[1] for c in far_from_pole])
        assert mean_width_near >= mean_width_far

    def test_diameter_bound(self):
        partition = AnglePartition(2, 300)
        rng = np.random.default_rng(2)
        bound = partition.max_cell_diameter()
        for _ in range(30):
            point = rng.uniform(1e-3, HALF_PI, size=2)
            cell = partition.cell(partition.locate(point))
            center = np.clip(cell.center(), 1e-9, HALF_PI)
            assert angular_distance_angles(point, center) <= bound + 1e-6

    def test_neighbors_touch(self):
        partition = AnglePartition(2, 60)
        index = partition.locate(np.array([0.7, 0.7]))
        cell = partition.cell(index)
        for neighbor_index in partition.neighbors(index):
            neighbor = partition.cell(neighbor_index)
            gap = np.maximum(
                np.asarray(cell.low) - np.asarray(neighbor.high),
                np.asarray(neighbor.low) - np.asarray(cell.high),
            )
            assert np.all(gap <= 1e-9)

    def test_cell_index_out_of_range(self):
        partition = AnglePartition(2, 50)
        with pytest.raises(GeometryError):
            partition.cell(partition.n_cells + 5)


class TestCellPlaneAssignment:
    def test_matches_bruteforce_reference(self):
        partition = UniformGridPartition(2, 36)
        rng = np.random.default_rng(3)
        hyperplanes = [Hyperplane(tuple(rng.uniform(0.5, 3.0, size=2))) for _ in range(10)]
        index = assign_hyperplanes_to_cells(partition, hyperplanes)
        for cell in partition.cells():
            expected = set(hyperplanes_through_cell(cell, hyperplanes))
            assert set(index.by_cell[cell.index]) == expected

    def test_counts_shape(self):
        partition = UniformGridPartition(2, 25)
        hyperplanes = [Hyperplane((1.0, 1.0)), Hyperplane((2.0, 2.0))]
        index = assign_hyperplanes_to_cells(partition, hyperplanes)
        counts = index.counts()
        assert counts.shape == (partition.n_cells,)
        assert counts.sum() == sum(len(entry) for entry in index.by_cell)

    def test_pruning_does_fewer_tests_than_full_pairwise(self):
        partition = UniformGridPartition(2, 100)
        rng = np.random.default_rng(4)
        hyperplanes = [Hyperplane(tuple(rng.uniform(0.5, 3.0, size=2))) for _ in range(15)]
        index = assign_hyperplanes_to_cells(partition, hyperplanes)
        assert index.box_tests < partition.n_cells * len(hyperplanes)

    def test_dimension_mismatch_raises(self):
        partition = UniformGridPartition(2, 4)
        with pytest.raises(GeometryError):
            assign_hyperplanes_to_cells(partition, [Hyperplane((1.0, 1.0, 1.0))])

    def test_works_with_adaptive_partition(self):
        partition = AnglePartition(2, 40)
        hyperplanes = [Hyperplane((1.5, 1.5))]
        index = assign_hyperplanes_to_cells(partition, hyperplanes)
        for cell in partition.cells():
            expected = set(hyperplanes_through_cell(cell, hyperplanes))
            assert set(index.by_cell[cell.index]) == expected
