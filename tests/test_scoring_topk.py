"""Tests for linear scoring functions, top-k helpers and query generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError, DatasetError, ScoringFunctionError
from repro.ranking.queries import perturbed_queries, random_queries, simplex_grid_queries
from repro.ranking.scoring import LinearScoringFunction, random_scoring_function
from repro.ranking.topk import (
    group_counts_at_k,
    group_fraction_at_k,
    kendall_tau_distance,
    ordering_is_valid,
    resolve_k,
)


@pytest.fixture
def tiny_dataset() -> Dataset:
    scores = np.array([[3.0, 1.0], [2.0, 2.0], [1.0, 3.0], [0.5, 0.5]])
    return Dataset(
        scores=scores,
        scoring_attributes=["a", "b"],
        types={"g": np.array(["x", "y", "x", "y"])},
    )


class TestLinearScoringFunction:
    def test_score_and_order(self, tiny_dataset):
        function = LinearScoringFunction((1.0, 0.0))
        assert np.allclose(function.score(tiny_dataset), [3.0, 2.0, 1.0, 0.5])
        assert list(function.order(tiny_dataset)) == [0, 1, 2, 3]

    def test_order_is_descending_with_stable_ties(self):
        scores = np.array([[1.0, 1.0], [2.0, 0.0], [0.0, 2.0]])
        dataset = Dataset(scores=scores, scoring_attributes=["a", "b"])
        ordering = LinearScoringFunction((1.0, 1.0)).order(dataset)
        # All three items score 2; ties break by item index.
        assert list(ordering) == [0, 1, 2]

    def test_top_k(self, tiny_dataset):
        function = LinearScoringFunction((0.0, 1.0))
        assert list(function.top_k(tiny_dataset, 2)) == [2, 1]

    def test_top_k_caps_at_dataset_size(self, tiny_dataset):
        function = LinearScoringFunction((1.0, 1.0))
        assert len(function.top_k(tiny_dataset, 100)) == 4

    def test_top_k_requires_positive_k(self, tiny_dataset):
        with pytest.raises(ScoringFunctionError):
            LinearScoringFunction((1.0, 1.0)).top_k(tiny_dataset, 0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ScoringFunctionError):
            LinearScoringFunction((0.5, -0.5))

    def test_rejects_all_zero(self):
        with pytest.raises(ScoringFunctionError):
            LinearScoringFunction((0.0, 0.0))

    def test_rejects_single_weight(self):
        with pytest.raises(ScoringFunctionError):
            LinearScoringFunction((1.0,))

    def test_rejects_nan(self):
        with pytest.raises(ScoringFunctionError):
            LinearScoringFunction((float("nan"), 1.0))

    def test_dimension_mismatch(self, tiny_dataset):
        with pytest.raises(ScoringFunctionError):
            LinearScoringFunction((1.0, 1.0, 1.0)).score(tiny_dataset)

    def test_score_item(self):
        assert LinearScoringFunction((0.5, 0.5)).score_item([2.0, 4.0]) == pytest.approx(3.0)

    def test_uniform_constructor(self):
        function = LinearScoringFunction.uniform(4)
        assert np.allclose(function.as_array(), 0.25)

    def test_angles_round_trip(self):
        function = LinearScoringFunction((0.3, 0.5, 0.2))
        rebuilt = LinearScoringFunction.from_angles(function.to_angles())
        assert function.same_ray(rebuilt, tolerance=1e-9)

    def test_same_ray_is_scale_invariant(self):
        assert LinearScoringFunction((1.0, 2.0)).same_ray(LinearScoringFunction((2.0, 4.0)))

    def test_normalized_has_unit_norm(self):
        assert np.linalg.norm(
            LinearScoringFunction((3.0, 4.0)).normalized().as_array()
        ) == pytest.approx(1.0)

    @given(
        arrays(float, 3, elements=st.floats(0.0, 5.0, allow_nan=False)).filter(
            lambda w: np.any(w > 1e-6)
        ),
        st.floats(0.1, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_scaling_preserves_ordering(self, weights, factor):
        """Positive scalings of the weight vector induce the same ordering (paper §2)."""
        rng = np.random.default_rng(0)
        dataset = Dataset(scores=rng.random((12, 3)), scoring_attributes=["a", "b", "c"])
        base = LinearScoringFunction(tuple(weights))
        scaled = LinearScoringFunction(tuple(np.asarray(weights) * factor))
        assert np.array_equal(base.order(dataset), scaled.order(dataset))
        assert base.angular_distance_to(scaled) == pytest.approx(0.0, abs=1e-7)


class TestTopKHelpers:
    def test_resolve_k_fraction(self, tiny_dataset):
        assert resolve_k(tiny_dataset, 0.5) == 2

    def test_resolve_k_count(self, tiny_dataset):
        assert resolve_k(tiny_dataset, 3) == 3

    def test_resolve_k_clamps_to_dataset(self, tiny_dataset):
        assert resolve_k(tiny_dataset, 100) == 4

    def test_resolve_k_rejects_invalid(self, tiny_dataset):
        with pytest.raises(DatasetError):
            resolve_k(tiny_dataset, 0)
        with pytest.raises(DatasetError):
            resolve_k(tiny_dataset, 1.5)
        with pytest.raises(DatasetError):
            resolve_k(tiny_dataset, True)

    def test_group_counts(self, tiny_dataset):
        ordering = np.array([0, 1, 2, 3])
        counts = group_counts_at_k(tiny_dataset, ordering, "g", 2)
        assert counts == {"x": 1, "y": 1}

    def test_group_counts_k_out_of_range(self, tiny_dataset):
        with pytest.raises(DatasetError):
            group_counts_at_k(tiny_dataset, np.array([0, 1, 2, 3]), "g", 9)

    def test_group_fraction(self, tiny_dataset):
        ordering = np.array([0, 2, 1, 3])
        assert group_fraction_at_k(tiny_dataset, ordering, "g", "x", 2) == pytest.approx(1.0)

    def test_ordering_is_valid(self):
        assert ordering_is_valid(np.array([2, 0, 1]), 3)
        assert not ordering_is_valid(np.array([0, 0, 1]), 3)
        assert not ordering_is_valid(np.array([0, 1]), 3)

    def test_kendall_tau_identity(self):
        assert kendall_tau_distance(np.array([0, 1, 2]), np.array([0, 1, 2])) == 0

    def test_kendall_tau_adjacent_swap(self):
        assert kendall_tau_distance(np.array([0, 1, 2]), np.array([1, 0, 2])) == 1

    def test_kendall_tau_reversal(self):
        assert kendall_tau_distance(np.array([0, 1, 2, 3]), np.array([3, 2, 1, 0])) == 6

    def test_kendall_tau_length_mismatch(self):
        with pytest.raises(DatasetError):
            kendall_tau_distance(np.array([0, 1]), np.array([0, 1, 2]))


class TestQueryGenerators:
    def test_random_queries_count_and_dimension(self):
        queries = random_queries(4, 7, seed=0)
        assert len(queries) == 7
        assert all(query.dimension == 4 for query in queries)

    def test_random_queries_reproducible(self):
        first = random_queries(3, 5, seed=1)
        second = random_queries(3, 5, seed=1)
        assert all(a.weights == b.weights for a, b in zip(first, second))

    def test_random_queries_requires_positive_count(self):
        with pytest.raises(ConfigurationError):
            random_queries(3, 0)

    def test_random_scoring_function_unit_norm(self):
        function = random_scoring_function(5, np.random.default_rng(0))
        assert np.linalg.norm(function.as_array()) == pytest.approx(1.0)

    def test_perturbed_queries_stay_near_base(self):
        base = LinearScoringFunction((0.5, 0.5))
        queries = perturbed_queries(base, 10, scale=0.05, seed=0)
        assert all(query.angular_distance_to(base) < 0.5 for query in queries)

    def test_perturbed_queries_validation(self):
        base = LinearScoringFunction((0.5, 0.5))
        with pytest.raises(ConfigurationError):
            perturbed_queries(base, 0)
        with pytest.raises(ConfigurationError):
            perturbed_queries(base, 5, scale=-1.0)

    def test_simplex_grid_queries(self):
        queries = simplex_grid_queries(2, 4)
        assert len(queries) == 5  # (0,4), (1,3), ..., (4,0)
        sums = {sum(query.weights) for query in queries}
        assert all(value == pytest.approx(1.0) for value in sums)

    def test_simplex_grid_validation(self):
        with pytest.raises(ConfigurationError):
            simplex_grid_queries(1, 3)
        with pytest.raises(ConfigurationError):
            simplex_grid_queries(3, 0)
