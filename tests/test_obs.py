"""Behaviour suite for the observability layer (``repro.obs``).

Covers the four pillars the PR promises:

* **Determinism** — trace exports and metrics snapshots are byte-identical
  on a fake clock, whatever order the series were created in;
* **Transparency** — the ``"instrumented"`` engine returns bit-identical
  answers on the 2-D and approximate paths, and its oracle accounting is
  arithmetic-identical to :class:`~repro.fairness.oracle.CountingOracle`;
* **Replayability** — a recorded workload saves, loads and replays bit for
  bit through a fresh engine;
* **One counter source** — a fallback engine handed a shared registry keeps
  ``error_budget_report`` working off the same series the obs report reads.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import ApproxConfig, TwoDConfig, create_engine
from repro.core.monitoring import error_budget_report
from repro.exceptions import ConfigurationError
from repro.fairness.oracle import CountingOracle
from repro.obs import (
    InstrumentedConfig,
    InstrumentedEngine,
    MetricsRegistry,
    TraceRecorder,
    WorkloadRecorder,
)
from repro.obs.instrument import InstrumentedOracle
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, bucket_label
from repro.obs.report import main as report_main
from repro.obs.trace import activated, active_recorder, parse_trace_jsonl, stage_span
from repro.resilience import FallbackEngine
from repro.resilience.fallback import FallbackTelemetry
from repro.ranking.scoring import LinearScoringFunction
from repro.resilience.policy import FakeClock

pytestmark = pytest.mark.obs

#: Small capped approximate config: every approx test in the repo caps the
#: hyperplane budget (the uncapped pipeline is super-linear in n).
CAPPED_APPROX = ApproxConfig(n_cells=25, max_hyperplanes=25)


def _queries(q: int, d: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    weights = np.abs(rng.normal(size=(q, d)))
    weights[np.all(weights == 0.0, axis=1)] = 1.0
    return weights


# --------------------------------------------------------------------- #
# tracing
# --------------------------------------------------------------------- #
def _drive_spans(clock) -> TraceRecorder:
    recorder = TraceRecorder(clock=clock)
    with recorder.span("engine.suggest_many", q=2):
        with recorder.span("oracle.is_satisfactory_many", q=2):
            clock.advance(0.25)
        with recorder.span("preprocess.pair_chunk", start=0, stop=32) as span:
            clock.advance(0.5)
            span.set("n_pairs", 4)
    return recorder


def test_trace_export_is_byte_identical_on_fake_clock():
    first = _drive_spans(FakeClock()).export_jsonl()
    second = _drive_spans(FakeClock()).export_jsonl()
    assert first == second
    header, spans = parse_trace_jsonl(first)
    assert header["n_spans"] == 3
    assert header["n_dropped"] == 0
    durations = {span["name"]: span["duration"] for span in spans}
    assert durations["oracle.is_satisfactory_many"] == 0.25
    assert durations["preprocess.pair_chunk"] == 0.5
    assert durations["engine.suggest_many"] == 0.75


def test_span_attributes_and_set_land_in_the_export():
    recorder = _drive_spans(FakeClock())
    by_name = {span.name: dict(span.attributes) for span in recorder.spans}
    assert by_name["preprocess.pair_chunk"]["n_pairs"] == 4
    assert by_name["engine.suggest_many"]["q"] == 2


def test_trace_buffer_is_bounded_and_counts_drops():
    clock = FakeClock()
    recorder = TraceRecorder(clock=clock, max_spans=2)
    for index in range(5):
        with recorder.span("engine.suggest", index=index):
            clock.advance(0.01)
    assert len(recorder.spans) == 2
    assert recorder.n_dropped == 3
    header, spans = parse_trace_jsonl(recorder.export_jsonl())
    assert header["n_spans"] == 2
    assert header["n_dropped"] == 3
    assert len(spans) == 2


def test_stage_span_is_a_no_op_without_an_active_recorder():
    assert active_recorder() is None
    with stage_span("preprocess.pair_chunk", start=0) as span:
        assert span is None  # inactive: nothing recorded, nothing to set


def test_stage_span_records_into_the_activated_recorder():
    clock = FakeClock()
    recorder = TraceRecorder(clock=clock)
    with activated(recorder):
        assert active_recorder() is recorder
        with stage_span("preprocess.pair_chunk", start=0) as span:
            clock.advance(0.125)
            span.set("n_pairs", 9)
    assert active_recorder() is None
    assert recorder.span_names() == ("preprocess.pair_chunk",)
    assert dict(recorder.spans[0].attributes)["n_pairs"] == 9
    assert recorder.spans[0].duration == 0.125


def test_trace_recorder_clear_resets_spans_and_drops():
    clock = FakeClock()
    recorder = TraceRecorder(clock=clock, max_spans=1)
    for _ in range(3):
        with recorder.span("engine.suggest"):
            clock.advance(0.01)
    recorder.clear()
    assert recorder.spans == ()
    assert recorder.n_dropped == 0


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #
def _populated_registry(order_swapped: bool) -> MetricsRegistry:
    registry = MetricsRegistry()
    series = [("2d", 2), ("approximate", 5)]
    if order_swapped:
        series = series[::-1]
    for engine, count in series:
        registry.counter("engine.queries", engine=engine).inc(count)
    registry.gauge("trace.buffer").set(3)
    registry.histogram("engine.suggest_seconds").observe(0.002)
    return registry


def test_metrics_snapshot_is_independent_of_creation_order():
    first = _populated_registry(order_swapped=False)
    second = _populated_registry(order_swapped=True)
    assert first.to_json() == second.to_json()
    assert first.counter_total("engine.queries") == 7


def test_metrics_merge_adds_and_reset_zeroes():
    first = _populated_registry(order_swapped=False)
    second = _populated_registry(order_swapped=True)
    first.merge(second)
    assert first.counter_total("engine.queries") == 14
    snapshot = first.snapshot()
    histogram = next(
        series
        for series in snapshot["histograms"]
        if series["name"] == "engine.suggest_seconds"
    )
    assert histogram["count"] == 2
    first.reset()
    assert first.counter_total("engine.queries") == 0


def test_metric_names_cannot_change_kind():
    registry = MetricsRegistry()
    registry.counter("engine.queries").inc()
    with pytest.raises(ConfigurationError, match="already registered as a counter"):
        registry.gauge("engine.queries")


def test_bucket_label_covers_bounds_and_overflow():
    assert bucket_label(0.0, DEFAULT_LATENCY_BUCKETS).startswith("le=")
    assert bucket_label(1e9, DEFAULT_LATENCY_BUCKETS) == "le=+inf"


# --------------------------------------------------------------------- #
# instrumented engine: transparency
# --------------------------------------------------------------------- #
def test_instrumented_2d_engine_is_bit_identical(small_compas_2d, race_oracle_2d):
    bare = create_engine(small_compas_2d, race_oracle_2d, TwoDConfig()).preprocess()
    observed = create_engine(
        small_compas_2d, race_oracle_2d, InstrumentedConfig(inner=TwoDConfig())
    ).preprocess()
    queries = _queries(25, 2)
    assert observed.suggest_many(queries) == bare.suggest_many(queries)
    function = LinearScoringFunction(tuple(queries[0]))
    assert observed.suggest(function) == bare.suggest(function)


def test_instrumented_approx_engine_is_bit_identical(small_compas_3d, race_oracle_3d):
    bare = create_engine(small_compas_3d, race_oracle_3d, CAPPED_APPROX).preprocess()
    observed = create_engine(
        small_compas_3d, race_oracle_3d, InstrumentedConfig(inner=CAPPED_APPROX)
    ).preprocess()
    queries = _queries(10, 3)
    assert observed.suggest_many(queries) == bare.suggest_many(queries)


def test_instrumented_oracle_counts_match_counting_oracle(
    small_compas_2d, race_oracle_2d
):
    counting = CountingOracle(race_oracle_2d)
    bare = create_engine(small_compas_2d, counting, TwoDConfig()).preprocess()
    observed = create_engine(
        small_compas_2d, race_oracle_2d, InstrumentedConfig(inner=TwoDConfig())
    ).preprocess()
    queries = _queries(25, 2)
    assert observed.suggest_many(queries) == bare.suggest_many(queries)
    assert observed.instrumented_oracle.calls == counting.calls
    assert observed.metrics.counter_total("oracle.calls") == counting.calls


def test_span_coverage_reaches_every_stage(small_compas_2d, race_oracle_2d):
    observed = create_engine(
        small_compas_2d, race_oracle_2d, InstrumentedConfig(inner=TwoDConfig())
    ).preprocess()
    observed.suggest_many(_queries(5, 2))
    names = set(observed.recorder.span_names())
    assert "engine.preprocess" in names
    assert "engine.suggest_many" in names
    assert any(name.startswith("oracle.") for name in names)
    assert any(name.startswith("preprocess.") for name in names)


def test_instrumented_engine_counts_queries_and_latency(
    small_compas_2d, race_oracle_2d
):
    observed = create_engine(
        small_compas_2d, race_oracle_2d, InstrumentedConfig(inner=TwoDConfig())
    ).preprocess()
    observed.suggest_many(_queries(7, 2))
    assert observed.metrics.counter_total("engine.queries") == 7
    assert observed.metrics.counter_total("engine.suggest_many") == 1
    snapshot = observed.metrics.snapshot()
    batch_latency = next(
        series
        for series in snapshot["histograms"]
        if series["name"] == "engine.suggest_many_seconds"
    )
    assert batch_latency["count"] == 1


def test_from_engine_wraps_a_prebuilt_engine(small_compas_2d, race_oracle_2d):
    engine = create_engine(small_compas_2d, race_oracle_2d, TwoDConfig()).preprocess()
    baseline = engine.suggest_many(_queries(5, 2))
    observed = InstrumentedEngine.from_engine(engine, record_workload=True)
    assert observed.inner is engine
    assert isinstance(engine.oracle, InstrumentedOracle)
    assert observed.suggest_many(_queries(5, 2)) == baseline
    assert observed.workload.n_queries == 5


def test_instrumented_config_rejects_nesting_and_bad_bounds():
    with pytest.raises(ConfigurationError, match="does not nest"):
        InstrumentedConfig(inner=InstrumentedConfig())
    with pytest.raises(ConfigurationError, match="max_spans"):
        InstrumentedConfig(max_spans=0)


def test_instrumented_engine_rejects_foreign_config(small_compas_2d, race_oracle_2d):
    with pytest.raises(ConfigurationError, match="InstrumentedConfig"):
        InstrumentedEngine(small_compas_2d, race_oracle_2d, TwoDConfig())


def test_instrumented_engine_is_not_persistable(small_compas_2d, race_oracle_2d):
    observed = create_engine(
        small_compas_2d, race_oracle_2d, InstrumentedConfig(inner=TwoDConfig())
    )
    with pytest.raises(ConfigurationError, match="not\\s+persistable"):
        observed.to_payload()
    with pytest.raises(ConfigurationError, match="not persistable"):
        InstrumentedEngine.from_payload({}, race_oracle_2d)


# --------------------------------------------------------------------- #
# workload recording and replay
# --------------------------------------------------------------------- #
def test_workload_save_load_replay_is_bit_identical(
    tmp_path, small_compas_2d, race_oracle_2d
):
    recording = create_engine(
        small_compas_2d,
        race_oracle_2d,
        InstrumentedConfig(inner=TwoDConfig(), record_workload=True),
    ).preprocess()
    recording.suggest_many(_queries(12, 2))
    path = recording.workload.save(tmp_path / "workload.jsonl")

    loaded = WorkloadRecorder.load(path)
    assert loaded.n_queries == 12
    fresh = create_engine(
        small_compas_2d, race_oracle_2d, InstrumentedConfig(inner=TwoDConfig())
    ).preprocess()
    report = loaded.replay(fresh)
    assert report.bit_identical
    assert report.n_queries == 12
    assert report.n_skipped == 0
    assert report.n_mismatched == 0


def test_workload_records_carry_context_and_buckets(small_compas_2d, race_oracle_2d):
    recording = create_engine(
        small_compas_2d,
        race_oracle_2d,
        InstrumentedConfig(inner=TwoDConfig(), record_workload=True),
    ).preprocess()
    recording.workload.set_context(session="unit-test")
    recording.suggest_many(_queries(3, 2))
    records = recording.workload.records()
    assert len(records) == 3
    for record in records:
        assert record["engine"] == "2d"
        assert record["context"] == {"session": "unit-test"}
        assert record["batch_size"] == 3
        assert record["latency_bucket"].startswith("le=")


def test_workload_load_rejects_foreign_formats(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text(json.dumps({"format": "something/else"}) + "\n", encoding="utf-8")
    with pytest.raises(ConfigurationError):
        WorkloadRecorder.load(path)


def test_replay_flags_mismatches_against_a_different_engine(
    small_compas_2d, race_oracle_2d, paper_2d_dataset, balanced_topk_oracle
):
    recording = create_engine(
        small_compas_2d,
        race_oracle_2d,
        InstrumentedConfig(inner=TwoDConfig(), record_workload=True),
    ).preprocess()
    recording.suggest_many(_queries(6, 2))
    other = create_engine(
        paper_2d_dataset, balanced_topk_oracle, InstrumentedConfig(inner=TwoDConfig())
    ).preprocess()
    report = recording.workload.replay(other)
    assert not report.bit_identical
    assert report.n_mismatched + report.n_skipped > 0


# --------------------------------------------------------------------- #
# one counter source: fallback telemetry on the shared registry
# --------------------------------------------------------------------- #
def test_fallback_telemetry_reads_and_writes_the_registry():
    metrics = MetricsRegistry()
    telemetry = FallbackTelemetry(metrics=metrics)
    telemetry.n_queries += 3
    telemetry.record_answer("tier0:2d", failover=False)
    telemetry.record_answer("tier1:approximate", failover=True)
    telemetry.record_tier_failure("tier0:2d")
    assert metrics.counter_total("fallback.queries") == 3
    assert metrics.counter_total("fallback.failovers") == 1
    assert metrics.counter_total("fallback.answered") == 2
    assert dict(telemetry.answered_by) == {"tier0:2d": 1, "tier1:approximate": 1}
    assert dict(telemetry.tier_failures) == {"tier0:2d": 1}
    assert telemetry.as_dict()["n_failovers"] == 1


def test_fallback_engine_shares_a_registry_with_the_budget_report(
    small_compas_2d, race_oracle_2d
):
    metrics = MetricsRegistry()
    engine = FallbackEngine(
        small_compas_2d, race_oracle_2d, metrics=metrics
    ).preprocess()
    engine.suggest_many(_queries(9, 2))
    assert engine.telemetry.n_queries == 9
    assert metrics.counter_total("fallback.queries") == 9
    report = error_budget_report(engine)
    assert report.n_queries == 9
    assert report.n_unanswered == 0
    assert report.error_rate == 0.0


def test_instrumenting_a_fallback_engine_unifies_telemetry(
    small_compas_2d, race_oracle_2d
):
    inner = FallbackEngine(small_compas_2d, race_oracle_2d)
    observed = InstrumentedEngine.from_engine(inner).preprocess()
    assert inner.telemetry.metrics is observed.metrics
    observed.suggest_many(_queries(4, 2))
    assert observed.metrics.counter_total("fallback.queries") == 4
    assert observed.metrics.counter_total("engine.queries") == 4


# --------------------------------------------------------------------- #
# report CLI
# --------------------------------------------------------------------- #
def test_report_cli_renders_all_three_artifacts(
    tmp_path, capsys, small_compas_2d, race_oracle_2d
):
    recording = create_engine(
        small_compas_2d,
        race_oracle_2d,
        InstrumentedConfig(inner=TwoDConfig(), record_workload=True),
    ).preprocess()
    recording.suggest_many(_queries(5, 2))
    metrics_path = recording.metrics.save(tmp_path / "metrics.json")
    trace_path = recording.recorder.save(tmp_path / "trace.jsonl")
    workload_path = recording.workload.save(tmp_path / "workload.jsonl")

    status = report_main(
        [
            "report",
            "--metrics",
            str(metrics_path),
            "--trace",
            str(trace_path),
            "--workload",
            str(workload_path),
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "metrics:" in out
    assert "trace:" in out
    assert "workload: 5 queries" in out


def test_report_cli_requires_at_least_one_artifact(capsys):
    assert report_main(["report"]) == 2
    assert "nothing to report" in capsys.readouterr().err


def test_report_cli_rejects_misformatted_files(tmp_path, capsys):
    bogus = tmp_path / "metrics.json"
    bogus.write_text(json.dumps({"format": "nope"}), encoding="utf-8")
    assert report_main(["report", "--metrics", str(bogus)]) == 2
    assert "repro.obs report:" in capsys.readouterr().err
