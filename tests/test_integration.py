"""Cross-module integration tests.

These tests exercise full pipelines end-to-end on scenarios modelled after the
paper's narrative: the college-admissions example of the introduction, the
exact-vs-approximate agreement in 3 dimensions, and the consistency between
the 2-D ray sweep and a 2-attribute projection of the same data.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.approx import ApproximatePreprocessor, md_online
from repro.core.multi_dim import SatRegions, md_baseline
from repro.core.two_dim import TwoDRaySweep
from repro.data.synthetic import make_admissions_like, make_compas_like
from repro.fairness.measures import group_share_at_k, selection_rate_ratio
from repro.fairness.multi_attribute import MultiAttributeOracle
from repro.fairness.baselines import greedy_fair_rerank
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle
from repro.ranking.queries import random_queries
from repro.ranking.scoring import LinearScoringFunction


class TestAdmissionsExample:
    """The paper's Example 1: equal GPA/SAT weights under-select women; a nearby fix exists."""

    @pytest.fixture(scope="class")
    def setup(self):
        dataset = make_admissions_like(n=800, seed=0, gap=0.12)
        k = 200
        oracle = ProportionalOracle("gender", "female", k=k, min_fraction=0.40)
        index = TwoDRaySweep(dataset, oracle).run()
        return dataset, oracle, k, index

    def test_proposed_weights_may_need_repair(self, setup):
        dataset, oracle, k, index = setup
        query = LinearScoringFunction((0.5, 0.5))
        result = index.query(query)
        assert oracle.evaluate_function(result.function, dataset)

    def test_suggested_function_raises_female_share(self, setup):
        dataset, oracle, k, index = setup
        sat_heavy = LinearScoringFunction((0.05, 0.95))
        result = index.query(sat_heavy)
        if result.satisfactory:
            pytest.skip("SAT-heavy weights already satisfy the constraint for this draw")
        before = group_share_at_k(dataset, sat_heavy.order(dataset), "gender", "female", k)
        after = group_share_at_k(dataset, result.function.order(dataset), "gender", "female", k)
        assert after >= before
        assert after >= 0.40 - 1e-9

    def test_output_intervention_baseline_agrees_on_share(self, setup):
        """The FA*IR-style re-ranker reaches the same share by editing the output instead."""
        dataset, oracle, k, index = setup
        sat_heavy = LinearScoringFunction((0.05, 0.95))
        reranked = greedy_fair_rerank(
            dataset, sat_heavy.order(dataset), "gender", "female", k=k, min_protected_fraction=0.40
        )
        assert group_share_at_k(dataset, reranked, "gender", "female", k) >= 0.40 - 1e-9


class TestExactVsApproximateAgreement:
    @pytest.fixture(scope="class")
    def setup(self):
        dataset = make_compas_like(n=22, seed=40).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=7, max_count=4)
        exact = SatRegions(dataset, oracle, max_hyperplanes=30).run()
        approx = ApproximatePreprocessor(dataset, oracle, n_cells=49, max_hyperplanes=30).run()
        return dataset, oracle, exact, approx

    def test_both_find_satisfiability(self, setup):
        _, _, exact, approx = setup
        assert exact.has_satisfactory_region == approx.has_satisfactory_function

    def test_both_answers_are_satisfactory(self, setup):
        dataset, oracle, exact, approx = setup
        for query in random_queries(3, 8, seed=41):
            exact_result = md_baseline(dataset, oracle, exact, query)
            approx_result = md_online(approx, query)
            assert oracle.evaluate_function(exact_result.function, dataset)
            assert oracle.evaluate_function(approx_result.function, dataset)
            assert exact_result.satisfactory == approx_result.satisfactory

    def test_approximate_distance_never_beats_exact(self, setup):
        """The exact answer is optimal, so the approximate one can never be closer."""
        dataset, oracle, exact, approx = setup
        for query in random_queries(3, 8, seed=42):
            if oracle.evaluate_function(query, dataset):
                continue
            exact_result = md_baseline(dataset, oracle, exact, query)
            approx_result = md_online(approx, query)
            assert approx_result.angular_distance >= exact_result.angular_distance - 1e-6


class TestTwoDConsistencyWithMeasures:
    def test_repair_improves_or_preserves_parity_measures(self):
        dataset = make_compas_like(n=120, seed=43).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        k = 36
        oracle = TopKGroupBoundOracle("race", "African-American", k=k, max_count=int(0.6 * k))
        index = TwoDRaySweep(dataset, oracle).run()
        repaired = 0
        for query in random_queries(2, 20, seed=44):
            result = index.query(query)
            if result.satisfactory:
                continue
            repaired += 1
            before = group_share_at_k(
                dataset, query.order(dataset), "race", "African-American", k
            )
            after = group_share_at_k(
                dataset, result.function.order(dataset), "race", "African-American", k
            )
            assert after <= 0.6 + 1e-9
            assert after <= before + 1e-9
        assert repaired >= 1

    def test_selection_rate_ratio_moves_toward_parity(self):
        dataset = make_compas_like(n=150, seed=45).project(
            ["c_days_from_compas", "priors_count"]
        )
        k = 45
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=k, slack=0.05
        )
        index = TwoDRaySweep(dataset, oracle).run()
        if not index.has_satisfactory_region:
            pytest.skip("constraint unsatisfiable for this draw")
        for query in random_queries(2, 10, seed=46):
            result = index.query(query)
            if result.satisfactory:
                continue
            before = selection_rate_ratio(
                dataset, query.order(dataset), "race", "African-American", k
            )
            after = selection_rate_ratio(
                dataset, result.function.order(dataset), "race", "African-American", k
            )
            # The protected group was over-selected before; the repair reduces the ratio.
            assert after <= before + 1e-9
            break


class TestFM2EndToEnd:
    def test_multi_attribute_constraint_2d(self):
        dataset = make_compas_like(n=100, seed=47).project(
            ["juv_other_count", "c_days_from_compas"]
        )
        k = 30
        oracle = MultiAttributeOracle(
            [
                ("sex", "male", int(0.90 * k)),
                ("race", "African-American", int(0.60 * k)),
                ("age_bucketized", "30_or_younger", int(0.52 * k)),
            ],
            k=k,
        )
        index = TwoDRaySweep(dataset, oracle).run()
        if not index.has_satisfactory_region:
            pytest.skip("FM2 unsatisfiable for this draw")
        for query in random_queries(2, 10, seed=48):
            result = index.query(query)
            assert oracle.evaluate_function(result.function, dataset)

    def test_fm2_is_stricter_than_its_parts(self):
        dataset = make_compas_like(n=100, seed=49).project(
            ["juv_other_count", "c_days_from_compas"]
        )
        k = 30
        race_only = TopKGroupBoundOracle("race", "African-American", k=k, max_count=int(0.6 * k))
        fm2 = MultiAttributeOracle(
            [
                ("race", "African-American", int(0.6 * k)),
                ("sex", "male", int(0.8 * k)),
            ],
            k=k,
        )
        for query in random_queries(2, 20, seed=50):
            ordering = query.order(dataset)
            if fm2.is_satisfactory(ordering, dataset):
                assert race_only.is_satisfactory(ordering, dataset)


class TestPublicApiSurface:
    def test_top_level_imports(self):
        import repro

        assert repro.__version__ == "1.3.0"
        assert hasattr(repro, "FairRankingDesigner")
        assert hasattr(repro, "ProportionalOracle")
        assert hasattr(repro, "LinearScoringFunction")
        assert hasattr(repro, "Dataset")

    def test_exception_hierarchy(self):
        import repro

        assert issubclass(repro.NoSatisfactoryFunctionError, repro.ReproError)
        assert issubclass(repro.DatasetError, repro.ReproError)
        assert issubclass(repro.GeometryError, repro.ReproError)
