"""Seeded property-based fuzz: the shard merge is invariant to topology.

No Hypothesis in the container, so randomness is explicit and pinned: every
test draws its dataset from a fixed seed list (the failing seed is right in
the test id).  The property under test is the heart of the PR-9 tentpole —

    ``parallel == serial`` for every (chunk size, worker count, cap)

over random small datasets: random scores, random group labels, n ≤ 60,
d ∈ {2, 3, 4}.  Three angles of attack:

* the hyperplane merge (d ≥ 3) must be invariant to chunk size and worker
  count;
* the ``max_hyperplanes`` cap must truncate identically whether it falls
  exactly on a shard edge, one below, or one above — plus the degenerate
  caps 0 and "everything";
* the 2-D exchange-angle merge must reproduce the serial kernel exactly.

These run on any machine: the merge path only needs ``n_workers >= 2``
*requested*, not two physical CPUs (the executors are short-lived and the
datasets tiny).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.dominance import exchange_pairs_for_block
from repro.geometry.dual import build_exchange_angles_2d, hyperplanes_for_dataset
from repro.parallel import (
    parallel_exchange_angles_2d,
    parallel_hyperplanes_for_dataset,
)
from repro.parallel.shards import plan_shards

pytestmark = pytest.mark.parallel

SEEDS = [11, 23, 37, 59]


def _random_dataset(rng: np.random.Generator, dimension: int) -> Dataset:
    n_items = int(rng.integers(18, 61))
    scores = rng.uniform(0.1, 10.0, size=(n_items, dimension))
    groups = rng.choice(np.array(["a", "b", "c"]), size=n_items)
    return Dataset(
        scores=scores,
        scoring_attributes=[f"s{axis}" for axis in range(dimension)],
        types={"g": groups},
        name=f"fuzz-{dimension}d",
    )


@pytest.mark.parametrize("dimension", [3, 4])
@pytest.mark.parametrize("seed", SEEDS)
def test_hyperplane_merge_invariant_to_chunks_and_workers(seed, dimension):
    rng = np.random.default_rng(seed)
    dataset = _random_dataset(rng, dimension)
    serial = hyperplanes_for_dataset(dataset)
    assert serial, "a random continuous dataset must have exchange hyperplanes"
    for chunk_size in (1, 5, dataset.n_items):
        for n_workers in (1, 2):
            parallel = parallel_hyperplanes_for_dataset(
                dataset, n_workers=n_workers, pair_chunk_size=chunk_size
            )
            assert parallel == serial, (
                f"merge diverges at chunk_size={chunk_size}, "
                f"n_workers={n_workers} (seed {seed}, d={dimension})"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_cap_truncates_identically_at_shard_edges(seed):
    """``max_hyperplanes`` at / one below / one above a shard edge, plus the
    degenerate caps 0 and total — all bit-identical to the serial truncation."""
    rng = np.random.default_rng(seed)
    dataset = _random_dataset(rng, 3)
    chunk_size = int(rng.integers(3, 9))
    total = len(hyperplanes_for_dataset(dataset))

    # Every eligible pair in a block yields one hyperplane (continuous random
    # scores: no ties, no degenerate pairs), so the first shard edge in
    # hyperplane-count space is the pair count of the first row block.
    start, stop = plan_shards(dataset.n_items, chunk_size)[0]
    edge = len(exchange_pairs_for_block(dataset.scores, start, stop))
    assert 0 < edge < total, f"seed {seed} produced a degenerate first shard"

    caps = sorted({0, max(0, edge - 1), edge, min(total, edge + 1), total})
    for cap in caps:
        serial = hyperplanes_for_dataset(dataset, max_hyperplanes=cap)
        assert len(serial) == cap
        for n_workers in (1, 2):
            parallel = parallel_hyperplanes_for_dataset(
                dataset,
                n_workers=n_workers,
                pair_chunk_size=chunk_size,
                max_hyperplanes=cap,
            )
            assert parallel == serial, (
                f"cap {cap} diverges at n_workers={n_workers} "
                f"(seed {seed}, chunk_size={chunk_size}, edge {edge})"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_exchange_angle_merge_matches_serial_2d(seed):
    rng = np.random.default_rng(seed)
    dataset = _random_dataset(rng, 2)
    serial = build_exchange_angles_2d(dataset)
    for chunk_size in (1, 5, dataset.n_items):
        parallel = parallel_exchange_angles_2d(
            dataset, n_workers=2, row_chunk_size=chunk_size
        )
        assert parallel == serial, (
            f"2-D angle merge diverges at chunk_size={chunk_size} (seed {seed})"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_scalar_and_batched_methods_agree_in_parallel(seed):
    """The per-pair scalar fallback and the stacked gufunc kernel stay
    bit-identical when fanned over shards, exactly as they are serially."""
    rng = np.random.default_rng(seed)
    dataset = _random_dataset(rng, 3)
    batched = parallel_hyperplanes_for_dataset(
        dataset, n_workers=2, pair_chunk_size=7, method="batched"
    )
    scalar = parallel_hyperplanes_for_dataset(
        dataset, n_workers=2, pair_chunk_size=7, method="scalar"
    )
    assert batched == scalar
