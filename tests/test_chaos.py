"""Chaos suite: the resilience guarantees under seeded deterministic faults.

Every test here is marked ``chaos`` (run them alone with ``-m chaos``).  The
headline acceptance test is :class:`TestServingUnderChaos`: at a 20% seeded
fault rate, a fallback chain's ``suggest_many`` never raises, non-faulted
answers are bit-identical to the unwrapped engine's, and every faulted query
carries a structured per-query record naming the tier that (or whether any
tier) answered.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ApproxConfig, create_engine
from repro.exceptions import OracleUnavailableError
from repro.fairness.oracle import CountingOracle
from repro.ranking.scoring import LinearScoringFunction
from repro.resilience import (
    ChaosEngine,
    ChaosOracle,
    CircuitBreaker,
    FakeClock,
    FallbackEngine,
    InjectedFault,
    QueryFailure,
    ResilientOracle,
    RetryPolicy,
)

pytestmark = pytest.mark.chaos

TIER_A = ApproxConfig(n_cells=64, max_hyperplanes=40)
TIER_B = ApproxConfig(n_cells=32, max_hyperplanes=30)


@pytest.fixture(scope="module")
def chaos_setup(shared_compas_3d, shared_race_oracle_3d):
    tier_a = create_engine(shared_compas_3d, shared_race_oracle_3d, TIER_A).preprocess()
    tier_b = create_engine(shared_compas_3d, shared_race_oracle_3d, TIER_B).preprocess()
    return shared_compas_3d, shared_race_oracle_3d, tier_a, tier_b


def _queries(q: int, d: int = 3, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.1, 1.0, size=(q, d))


# --------------------------------------------------------------------------- #
# the chaos wrappers themselves
# --------------------------------------------------------------------------- #
class TestChaosOracle:
    def test_injection_is_deterministic_per_payload(self, chaos_setup):
        dataset, oracle, _, _ = chaos_setup
        chaos = ChaosOracle(oracle, failure_rate=0.5, seed=3)
        rng = np.random.default_rng(0)
        orderings = [rng.permutation(dataset.n_items) for _ in range(30)]
        verdicts = []
        for ordering in orderings:
            try:
                verdicts.append(chaos.is_satisfactory(ordering, dataset))
            except InjectedFault:
                verdicts.append("fault")
        # Same seed, same payloads: the exact same outcome sequence.
        replay = ChaosOracle(oracle, failure_rate=0.5, seed=3)
        for ordering, expected in zip(orderings, verdicts):
            if expected == "fault":
                assert replay.would_fail(ordering)
                with pytest.raises(InjectedFault):
                    replay.is_satisfactory(ordering, dataset)
            else:
                assert replay.is_satisfactory(ordering, dataset) == expected
        assert chaos.injected_failures == verdicts.count("fault") > 0

    def test_rates_roughly_respected(self, chaos_setup):
        dataset, oracle, _, _ = chaos_setup
        chaos = ChaosOracle(oracle, failure_rate=0.2, seed=1)
        rng = np.random.default_rng(1)
        faults = sum(
            chaos.would_fail(rng.permutation(dataset.n_items)) for _ in range(400)
        )
        assert 40 <= faults <= 130  # 20% ± generous slack on 400 draws

    def test_wrong_verdicts_flip_the_inner_answer(self, chaos_setup):
        dataset, oracle, _, _ = chaos_setup
        counting = CountingOracle(oracle)
        chaos = ChaosOracle(counting, wrong_verdict_rate=1.0, seed=0)
        ordering = np.arange(dataset.n_items)
        assert chaos.is_satisfactory(ordering, dataset) != oracle.is_satisfactory(
            ordering, dataset
        )
        assert chaos.injected_flips == 1

    def test_disabled_wrapper_is_transparent(self, chaos_setup):
        dataset, oracle, _, _ = chaos_setup
        chaos = ChaosOracle(oracle, failure_rate=1.0, enabled=False)
        ordering = np.arange(dataset.n_items)
        assert chaos.is_satisfactory(ordering, dataset) == oracle.is_satisfactory(
            ordering, dataset
        )
        assert chaos.injected_failures == 0 and chaos.forwarded_calls == 1

    def test_latency_advances_the_clock(self, chaos_setup):
        dataset, oracle, _, _ = chaos_setup
        clock = FakeClock()
        chaos = ChaosOracle(oracle, latency=0.5, clock=clock)
        chaos.is_satisfactory(np.arange(dataset.n_items), dataset)
        assert clock() == 0.5

    def test_describe_names_the_rates(self, chaos_setup):
        _, oracle, _, _ = chaos_setup
        assert "fail=0.25" in ChaosOracle(oracle, failure_rate=0.25).describe()


class TestChaosEngine:
    def test_batch_raises_on_first_poisoned_query(self, chaos_setup):
        _, _, tier_a, _ = chaos_setup
        chaos = ChaosEngine(tier_a, failure_rate=0.3, seed=7)
        matrix = _queries(20, seed=1)
        assert any(chaos.would_fail(row) for row in matrix)
        with pytest.raises(InjectedFault):
            chaos.suggest_many(matrix)

    def test_faults_are_path_independent(self, chaos_setup):
        _, _, tier_a, _ = chaos_setup
        chaos = ChaosEngine(tier_a, failure_rate=0.3, seed=7)
        matrix = _queries(20, seed=1)
        for row in matrix:
            function = LinearScoringFunction(tuple(row.tolist()))
            if chaos.would_fail(row):
                with pytest.raises(InjectedFault):
                    chaos.suggest(function)  # same query faults on retry too
            else:
                assert chaos.suggest(function) == tier_a.suggest(function)


# --------------------------------------------------------------------------- #
# resilient oracle under chaos
# --------------------------------------------------------------------------- #
class TestResilientOracleUnderChaos:
    def test_retry_does_not_heal_payload_keyed_faults(self, chaos_setup):
        # Payload-keyed injection models a *deterministically* failing input:
        # the retry budget burns out and the typed error surfaces.
        dataset, oracle, _, _ = chaos_setup
        chaos = ChaosOracle(oracle, failure_rate=1.0, seed=0)
        resilient = ResilientOracle(
            chaos,
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
            circuit_breaker=CircuitBreaker(failure_threshold=100, clock=FakeClock()),
            sleep=lambda _s: None,
        )
        with pytest.raises(OracleUnavailableError) as excinfo:
            resilient.is_satisfactory(np.arange(dataset.n_items), dataset)
        assert isinstance(excinfo.value.last_error, InjectedFault)
        assert resilient.stats.calls == 3

    def test_clean_payloads_pass_through_chaos(self, chaos_setup):
        dataset, oracle, _, _ = chaos_setup
        chaos = ChaosOracle(oracle, failure_rate=0.5, seed=3)
        resilient = ResilientOracle(chaos, sleep=lambda _s: None)
        rng = np.random.default_rng(5)
        checked = 0
        for _ in range(20):
            ordering = rng.permutation(dataset.n_items)
            if not chaos.would_fail(ordering):
                assert resilient.is_satisfactory(
                    ordering, dataset
                ) == oracle.is_satisfactory(ordering, dataset)
                checked += 1
        assert checked > 0

    def test_breaker_opens_under_sustained_chaos(self, chaos_setup):
        dataset, oracle, _, _ = chaos_setup
        clock = FakeClock()
        chaos = ChaosOracle(oracle, failure_rate=1.0, seed=0)
        resilient = ResilientOracle(
            chaos,
            retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
            circuit_breaker=CircuitBreaker(
                failure_threshold=3, recovery_time=60.0, clock=clock
            ),
            clock=clock,
            sleep=clock.advance,
        )
        ordering = np.arange(dataset.n_items)
        for _ in range(2):
            with pytest.raises(OracleUnavailableError):
                resilient.is_satisfactory(ordering, dataset)
        assert resilient.circuit_breaker.state == "open"
        calls_before = resilient.stats.calls
        with pytest.raises(OracleUnavailableError):
            resilient.is_satisfactory(ordering, dataset)
        assert resilient.stats.calls == calls_before  # fail-fast, no oracle call
        assert resilient.stats.rejected_open >= 1

    def test_chaos_latency_trips_the_deadline(self, chaos_setup):
        dataset, oracle, _, _ = chaos_setup
        clock = FakeClock()
        chaos = ChaosOracle(oracle, latency=3.0, clock=clock)
        resilient = ResilientOracle(
            chaos,
            deadline=1.0,
            retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
            circuit_breaker=CircuitBreaker(failure_threshold=100, clock=clock),
            clock=clock,
            sleep=clock.advance,
        )
        with pytest.raises(OracleUnavailableError):
            resilient.is_satisfactory(np.arange(dataset.n_items), dataset)
        assert resilient.stats.timeouts == 2


# --------------------------------------------------------------------------- #
# the headline acceptance criterion
# --------------------------------------------------------------------------- #
class TestServingUnderChaos:
    """At 20% seeded faults: never raise, bit-identical clean answers,
    structured per-query records for the faulted ones."""

    FAILURE_RATE = 0.2
    N_QUERIES = 40

    def test_suggest_many_never_raises_and_isolates_faults(self, chaos_setup):
        _, _, tier_a, tier_b = chaos_setup
        chaotic = ChaosEngine(tier_a, failure_rate=self.FAILURE_RATE, seed=13)
        engine = FallbackEngine.from_engines([chaotic, tier_b]).preprocess()
        matrix = _queries(self.N_QUERIES, seed=2)
        baseline = tier_a.suggest_many(matrix)  # the unwrapped engine
        backup = tier_b.suggest_many(matrix)
        poisoned = {row for row in range(self.N_QUERIES) if chaotic.would_fail(matrix[row])}
        assert poisoned, "the seed must fault some queries for this test to bite"

        results = engine.suggest_many(matrix)  # must not raise
        report = engine.last_report
        assert report.n_queries == self.N_QUERIES

        for row, result in enumerate(results):
            record = report.records[row]
            assert record.index == row
            if row in poisoned:
                # Faulted query: structured record naming the answering tier.
                assert record.faulted
                assert record.errors[0].tier == "0:approximate"
                assert record.errors[0].error_type == "InjectedFault"
                assert record.tier == "1:approximate" and record.answered
                assert result == backup[row]
            else:
                # Clean query: bit-identical to the unwrapped engine.
                assert not record.faulted and record.tier == "0:approximate"
                assert result == baseline[row]
        assert report.n_faulted == len(poisoned)
        assert report.n_unanswered == 0

    def test_single_tier_chain_surfaces_failures_as_records(self, chaos_setup):
        _, _, tier_a, _ = chaos_setup
        chaotic = ChaosEngine(tier_a, failure_rate=self.FAILURE_RATE, seed=13)
        engine = FallbackEngine.from_engines([chaotic]).preprocess()
        matrix = _queries(self.N_QUERIES, seed=2)
        baseline = tier_a.suggest_many(matrix)
        results = engine.suggest_many(matrix)  # still never raises
        for row, result in enumerate(results):
            if chaotic.would_fail(matrix[row]):
                assert isinstance(result, QueryFailure)
                assert result.errors[0].error_type == "InjectedFault"
                assert not engine.last_report.records[row].answered
            else:
                assert result == baseline[row]
        assert engine.last_report.n_unanswered == len(
            [r for r in results if isinstance(r, QueryFailure)]
        )

    def test_chaos_run_is_reproducible(self, chaos_setup):
        _, _, tier_a, tier_b = chaos_setup
        matrix = _queries(self.N_QUERIES, seed=2)
        outcomes = []
        for _ in range(2):
            chaotic = ChaosEngine(tier_a, failure_rate=self.FAILURE_RATE, seed=13)
            engine = FallbackEngine.from_engines([chaotic, tier_b]).preprocess()
            engine.suggest_many(matrix)
            outcomes.append(
                tuple(record.tier for record in engine.last_report.records)
            )
        assert outcomes[0] == outcomes[1]
