"""Equivalence tests for the batched-oracle protocol and the paths it feeds.

The anchor is the black-box reference: for every oracle type,
``is_satisfactory_many`` over a ``(q, n)`` ordering stack must equal a Python
loop of ``is_satisfactory`` — exactly, row for row — and the batched serving
paths (``ApproxEngine.suggest_many``, the §5.4 sample validation, the
freshness monitor, ``MDBASELINE``'s candidate re-validation) must return
bit-identical answers and unchanged oracle-call counts whether the oracle is
batched or a black box.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import ApproximatePreprocessor, MDApproxIndex, md_online_lookup
from repro.core.engine import ApproxConfig, ExactConfig, create_engine
from repro.core.monitoring import check_approx_index_freshness
from repro.core.multi_dim import SatRegions
from repro.core.sampling import validate_index_on_dataset
from repro.data.dataset import Dataset
from repro.data.synthetic import make_compas_like
from repro.exceptions import OracleError
from repro.fairness.batched import (
    as_batched,
    evaluate_functions_many,
    evaluate_many,
)
from repro.fairness.composite import AndOracle, NotOracle, OrOracle
from repro.fairness.multi_attribute import MultiAttributeOracle
from repro.fairness.oracle import CallableOracle, CountingOracle
from repro.fairness.pairwise import PairwiseParityOracle
from repro.fairness.prefix import MinimumAtEveryPrefixOracle, PrefixProportionalOracle
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle
from repro.geometry.angles import angular_distance_angles
from repro.geometry.dual import hyperplanes_for_dataset
from repro.ranking.scoring import LinearScoringFunction, order_many


def _compas(n: int, seed: int, d: int = 2) -> Dataset:
    attributes = ["c_days_from_compas", "juv_other_count", "start"][:d]
    return make_compas_like(n=n, seed=seed).project(attributes)


def _oracle_zoo(dataset: Dataset) -> list:
    """One oracle of every batched-capable flavour, on the given dataset."""
    fm1 = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    both_sides = ProportionalOracle(
        "race", "African-American", k=0.4, min_fraction=0.2, max_fraction=0.7
    )
    bound = TopKGroupBoundOracle("sex", "male", k=10, min_count=2, max_count=8)
    prefix = PrefixProportionalOracle(
        "race", "African-American", k=0.4, max_fraction=0.8, min_prefix=3
    )
    fair = MinimumAtEveryPrefixOracle("sex", "male", k=12, target_fraction=0.3)
    fm2 = MultiAttributeOracle.from_dataset_shares(
        dataset, {"sex": ["male"], "race": ["African-American"]}, k=0.3
    )
    pairwise = PairwiseParityOracle("sex", "male", max_gap=0.2)
    return [
        fm1,
        both_sides,
        bound,
        prefix,
        fair,
        fm2,
        pairwise,
        AndOracle([fm1, bound]),
        OrOracle([both_sides, fair]),
        NotOracle(prefix),
        CountingOracle(both_sides),
        AndOracle([OrOracle([bound, pairwise]), NotOracle(fair)]),
    ]


class TestBatchedProtocolEquivalence:
    @pytest.mark.perf_smoke
    @pytest.mark.parametrize("oracle_index", range(12))
    def test_is_satisfactory_many_matches_scalar_loop(self, oracle_index):
        dataset = _compas(50, seed=11)
        oracle = _oracle_zoo(dataset)[oracle_index]
        batched = as_batched(oracle)
        assert batched is not None

        rng = np.random.default_rng(oracle_index)
        orderings = np.stack([rng.permutation(dataset.n_items) for _ in range(60)])
        verdicts = batched.is_satisfactory_many(orderings, dataset)
        expected = [oracle.is_satisfactory(row, dataset) for row in orderings]
        assert np.asarray(verdicts).tolist() == expected

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_evaluate_many_matches_scalar_loop_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        dataset = _compas(30, seed=seed % 17)
        orderings = np.stack([rng.permutation(dataset.n_items) for _ in range(12)])
        for oracle in _oracle_zoo(dataset):
            verdicts = evaluate_many(oracle, orderings, dataset)
            assert verdicts.tolist() == [
                oracle.is_satisfactory(row, dataset) for row in orderings
            ]

    def test_black_box_fallback_path(self):
        dataset = _compas(25, seed=3)
        fm1 = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        black_box = CallableOracle(fm1.is_satisfactory, "wrapped fm1")
        assert as_batched(black_box) is None
        rng = np.random.default_rng(5)
        orderings = np.stack([rng.permutation(dataset.n_items) for _ in range(20)])
        # evaluate_many falls back to the loop and still answers correctly.
        assert evaluate_many(black_box, orderings, dataset).tolist() == [
            fm1.is_satisfactory(row, dataset) for row in orderings
        ]
        # A composite with one black-box leaf stays batched-capable (the
        # protocol is stateless): the capable child batches, the black-box
        # leaf is looped per row, and verdicts match the scalar loop.
        mixed = AndOracle([fm1, black_box])
        assert as_batched(mixed) is not None
        assert mixed.is_satisfactory_many(orderings, dataset).tolist() == [
            mixed.is_satisfactory(row, dataset) for row in orderings
        ]

    def test_ordering_matrix_shape_validated(self):
        dataset = _compas(20, seed=1)
        oracle = _oracle_zoo(dataset)[0]
        with pytest.raises(OracleError):
            as_batched(oracle).is_satisfactory_many(np.arange(dataset.n_items), dataset)

    def test_evaluate_functions_many_matches_evaluate_function(self):
        dataset = _compas(40, seed=9)
        rng = np.random.default_rng(2)
        functions = [
            LinearScoringFunction(tuple(np.abs(rng.normal(size=2)) + 1e-9))
            for _ in range(25)
        ]
        for oracle in _oracle_zoo(dataset):
            verdicts = evaluate_functions_many(oracle, dataset, functions)
            assert verdicts.tolist() == [
                oracle.evaluate_function(function, dataset) for function in functions
            ]
        assert evaluate_functions_many(_oracle_zoo(dataset)[0], dataset, []).shape == (0,)


class TestAsBatchedGuards:
    def test_black_box_oracles_are_not_batched(self):
        callable_oracle = CallableOracle(lambda ordering, dataset: True, "always")
        assert as_batched(callable_oracle) is None
        # A counting wrapper is only as capable as what it wraps.
        assert as_batched(CountingOracle(callable_oracle)) is None
        dataset = _compas(20, seed=0)
        fm1 = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        assert as_batched(CountingOracle(fm1)) is not None
        # Composites with a black-box leaf remain capable (unlike the
        # incremental protocol): the leaf is looped per row inside the batch.
        assert as_batched(AndOracle([fm1, callable_oracle])) is not None

    def test_shared_oracle_instance_in_composite_falls_back(self):
        dataset = _compas(20, seed=4)
        leaf = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        assert as_batched(AndOracle([leaf, leaf])) is None
        assert as_batched(OrOracle([leaf, AndOracle([leaf])])) is None

    def test_subclass_overriding_is_satisfactory_falls_back(self):
        class StricterOracle(ProportionalOracle):
            def is_satisfactory(self, ordering, dataset) -> bool:
                return super().is_satisfactory(ordering, dataset) and int(ordering[0]) % 2 == 0

        stricter = StricterOracle("race", "African-American", k=10, max_fraction=0.7)
        assert as_batched(stricter) is None
        # evaluate_many then routes through the override, not the parent kernel.
        dataset = _compas(20, seed=6)
        rng = np.random.default_rng(0)
        orderings = np.stack([rng.permutation(dataset.n_items) for _ in range(10)])
        assert evaluate_many(stricter, orderings, dataset).tolist() == [
            stricter.is_satisfactory(row, dataset) for row in orderings
        ]


class TestCountingOracle:
    @pytest.mark.parametrize("combiner", [AndOracle, OrOracle])
    def test_nested_counting_children_match_the_scalar_short_circuit(self, combiner):
        """Regression: And/Or must short-circuit per row in batched mode too.

        A counting child inside a composite sees a row only when the scalar
        ``all``/``any`` would have evaluated it there, so call totals are
        identical between is_satisfactory_many and a loop of is_satisfactory.
        """
        dataset = _compas(40, seed=7)
        rng = np.random.default_rng(7)
        orderings = np.stack([rng.permutation(dataset.n_items) for _ in range(30)])

        def tree(factory):
            first = factory(TopKGroupBoundOracle("sex", "male", k=10, max_count=6))
            second = factory(
                ProportionalOracle("race", "African-American", k=0.4, max_fraction=0.6)
            )
            return combiner([first, second]), first, second

        batched_tree, batched_first, batched_second = tree(CountingOracle)
        scalar_tree, scalar_first, scalar_second = tree(CountingOracle)
        verdicts = batched_tree.is_satisfactory_many(orderings, dataset)
        expected = [scalar_tree.is_satisfactory(row, dataset) for row in orderings]
        assert verdicts.tolist() == expected
        assert batched_first.calls == scalar_first.calls
        assert batched_second.calls == scalar_second.calls
        # The short-circuit is real: the second child saw only a subset.
        assert batched_second.calls < orderings.shape[0] or all(
            (verdicts if combiner is AndOracle else ~verdicts)
        )

    def test_counts_one_call_per_ordering(self):
        dataset = _compas(20, seed=1)
        fm1 = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        counting = CountingOracle(fm1)
        rng = np.random.default_rng(1)
        orderings = np.stack([rng.permutation(dataset.n_items) for _ in range(17)])
        counting.is_satisfactory_many(orderings, dataset)
        assert counting.calls == 17

    def test_incremental_forwarding_guarded_for_black_box_inner(self):
        """Regression: begin/apply_swap/verdict used to raise AttributeError."""
        dataset = _compas(15, seed=2)
        counting = CountingOracle(CallableOracle(lambda ordering, data: True, "always"))
        assert not counting.incremental_capable()
        with pytest.raises(OracleError):
            counting.begin(np.arange(dataset.n_items), dataset)
        with pytest.raises(OracleError):
            counting.apply_swap(0, 1)
        with pytest.raises(OracleError):
            counting.verdict()
        # The black-box route keeps working (and counting) as documented.
        assert counting.is_satisfactory(np.arange(dataset.n_items), dataset)
        assert counting.calls == 1

    def test_incremental_forwarding_still_works_for_capable_inner(self):
        dataset = _compas(20, seed=3)
        fm1 = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        counting = CountingOracle(fm1)
        ordering = np.arange(dataset.n_items)
        counting.begin(ordering.copy(), dataset)
        assert counting.verdict() == fm1.is_satisfactory(ordering, dataset)
        counting.apply_swap(0, 5)
        ordering[0], ordering[5] = ordering[5], ordering[0]
        assert counting.verdict() == fm1.is_satisfactory(ordering, dataset)
        assert counting.calls == 2


class TestOrderMany:
    @pytest.mark.perf_smoke
    @pytest.mark.parametrize("d", [2, 3])
    def test_order_many_matches_per_function_order(self, d):
        dataset = _compas(80, seed=8, d=d)
        rng = np.random.default_rng(d)
        weight_matrix = np.abs(rng.normal(size=(50, d))) + 1e-9
        orderings = order_many(dataset, weight_matrix)
        for row, weights in zip(orderings, weight_matrix):
            expected = LinearScoringFunction(tuple(weights)).order(dataset)
            assert np.array_equal(row, expected)

    def test_order_many_with_score_ties_matches(self):
        scores = np.array([[1.0, 2.0], [2.0, 1.0], [1.0, 2.0], [1.5, 1.5]])
        dataset = Dataset(scores=scores, scoring_attributes=["x", "y"])
        weight_matrix = np.array([[0.5, 0.5], [1.0, 0.0], [0.25, 0.75]])
        orderings = order_many(dataset, weight_matrix)
        for row, weights in zip(orderings, weight_matrix.tolist()):
            expected = LinearScoringFunction(tuple(weights)).order(dataset)
            assert np.array_equal(row, expected)


class TestHyperplaneCap:
    @pytest.mark.parametrize("method", ["batched", "scalar"])
    def test_capped_construction_equals_uncapped_prefix(self, method):
        dataset = _compas(25, seed=12, d=3)
        full = hyperplanes_for_dataset(dataset, method=method)
        for cap in (0, 1, 7, len(full), len(full) + 10):
            capped = hyperplanes_for_dataset(
                dataset, method=method, max_hyperplanes=cap, pair_chunk_size=3
            )
            assert capped == full[: cap]

    def test_preprocessor_and_satregions_honor_the_cap(self):
        dataset = _compas(25, seed=13, d=3)
        oracle = CallableOracle(lambda ordering, data: True, "always")
        full = hyperplanes_for_dataset(dataset)
        approx = ApproximatePreprocessor(
            dataset, oracle, n_cells=9, max_hyperplanes=10
        ).build_hyperplanes()
        exact = SatRegions(dataset, oracle, max_hyperplanes=10).build_hyperplanes()
        assert approx == full[:10]
        assert exact == full[:10]


class TestNearestAssignedFallback:
    def _index_with_holes(self) -> tuple[MDApproxIndex, list]:
        dataset = _compas(35, seed=14, d=3)
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.15
        )
        built = ApproximatePreprocessor(
            dataset, oracle, n_cells=36, max_hyperplanes=40
        ).run()
        assert built.has_satisfactory_function
        # Punch holes: clear every third assignment to force the fallback.
        assigned = [
            None if position % 3 == 0 else angles
            for position, angles in enumerate(built.assigned_angles)
        ]
        if all(angles is None for angles in assigned):
            pytest.skip("degenerate draw: nothing left assigned")
        index = MDApproxIndex(
            dataset=dataset,
            oracle=oracle,
            partition=built.partition,
            assigned_angles=assigned,
            marked=list(built.marked),
        )
        return index, assigned

    def test_vectorized_argmin_matches_reference_scan(self):
        index, assigned = self._index_with_holes()
        rng = np.random.default_rng(15)
        for _ in range(30):
            query_angles = rng.uniform(0.0, np.pi / 2.0, size=index.partition.dimension)
            # The seed implementation: a per-cell Python scan, first minimum wins.
            reference = min(
                (
                    (angular_distance_angles(angles, query_angles), angles)
                    for angles in assigned
                    if angles is not None
                ),
                key=lambda pair: pair[0],
            )[1]
            chosen = index.nearest_assigned_angles(query_angles)
            assert np.array_equal(chosen, reference)

    def test_lookup_answers_are_unchanged_in_holed_cells(self):
        index, assigned = self._index_with_holes()
        cells = index.partition.cells()
        holed = [cell for cell in cells if assigned[cell.index] is None][:10]
        for cell in holed:
            query = LinearScoringFunction.from_angles(cell.center(), radius=1.3)
            result = md_online_lookup(index, query)
            query_angles = query.to_angles()
            reference = min(
                (
                    (angular_distance_angles(angles, query_angles), angles)
                    for angles in assigned
                    if angles is not None
                ),
                key=lambda pair: pair[0],
            )[1]
            expected_distance = angular_distance_angles(query_angles, np.asarray(reference))
            assert result.angular_distance == expected_distance
            assert result.function.weights == LinearScoringFunction.from_angles(
                np.asarray(reference), radius=float(np.linalg.norm(query.as_array()))
            ).weights


class TestBatchedServingPaths:
    @pytest.fixture(scope="class")
    def md_setup(self):
        dataset = _compas(50, seed=16, d=3)
        fm1 = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
        return dataset, fm1

    @pytest.mark.perf_smoke
    def test_suggest_many_bit_identical_to_suggest_loop_and_fallback(self, md_setup):
        dataset, fm1 = md_setup
        batched_counting = CountingOracle(fm1)
        black_box_counting = CountingOracle(CallableOracle(fm1.is_satisfactory, "bb"))
        config = ApproxConfig(n_cells=49, max_hyperplanes=40)
        batched_engine = create_engine(dataset, batched_counting, config).preprocess()
        fallback_engine = create_engine(dataset, black_box_counting, config).preprocess()

        rng = np.random.default_rng(17)
        queries = np.abs(rng.normal(size=(120, 3)))
        queries[np.all(queries == 0.0, axis=1)] = 1.0
        batched_counting.reset()
        black_box_counting.reset()
        batched_results = batched_engine.suggest_many(queries)
        fallback_results = fallback_engine.suggest_many(queries)
        loop_results = [
            batched_engine.suggest(LinearScoringFunction(tuple(row)))
            for row in queries.tolist()
        ]
        assert batched_results == loop_results
        assert batched_results == fallback_results
        # One oracle call per query on every route (the loop adds another 120).
        assert black_box_counting.calls == 120
        assert batched_counting.calls == 240

    def test_exact_engine_revalidation_identical_across_routes(self, md_setup):
        dataset, fm1 = md_setup
        batched_counting = CountingOracle(fm1)
        black_box_counting = CountingOracle(CallableOracle(fm1.is_satisfactory, "bb"))
        config = ExactConfig(max_hyperplanes=20)
        batched_engine = create_engine(dataset, batched_counting, config).preprocess()
        fallback_engine = create_engine(dataset, black_box_counting, config).preprocess()
        rng = np.random.default_rng(18)
        queries = np.abs(rng.normal(size=(6, 3)))
        queries[np.all(queries == 0.0, axis=1)] = 1.0
        batched_counting.reset()
        black_box_counting.reset()
        batched_results = batched_engine.suggest_many(queries)
        fallback_results = fallback_engine.suggest_many(queries)
        assert batched_results == fallback_results
        assert batched_counting.calls == black_box_counting.calls

    def test_sample_validation_identical_across_routes(self, md_setup):
        dataset, fm1 = md_setup
        index = ApproximatePreprocessor(
            dataset, fm1, n_cells=25, max_hyperplanes=30
        ).run()
        batched_counting = CountingOracle(fm1)
        black_box_counting = CountingOracle(CallableOracle(fm1.is_satisfactory, "bb"))
        batched_report = validate_index_on_dataset(index, dataset, batched_counting)
        fallback_report = validate_index_on_dataset(index, dataset, black_box_counting)
        assert batched_report == fallback_report
        assert batched_counting.calls == black_box_counting.calls

    def test_freshness_check_identical_across_routes(self, md_setup):
        dataset, fm1 = md_setup
        index = ApproximatePreprocessor(
            dataset, fm1, n_cells=25, max_hyperplanes=30
        ).run()
        batched_counting = CountingOracle(fm1)
        black_box_counting = CountingOracle(CallableOracle(fm1.is_satisfactory, "bb"))
        batched_report = check_approx_index_freshness(index, dataset, batched_counting)
        fallback_report = check_approx_index_freshness(index, dataset, black_box_counting)
        assert batched_report == fallback_report
        assert batched_report.oracle_calls == batched_counting.calls
        assert batched_counting.calls == black_box_counting.calls
