"""Unit and property tests for dominance checks and convex layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.dominance import (
    dominance_matrix,
    dominates,
    exchange_pair_indices,
    iter_exchange_pair_chunks,
    non_dominated_pairs,
    skyline_indices,
)
from repro.data.layers import convex_layers, topk_candidate_indices, upper_hull_indices
from repro.exceptions import DatasetError


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([2.0, 3.0], [1.0, 3.0])

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates([1.0, 2.0], [1.0, 2.0])

    def test_incomparable_vectors(self):
        assert not dominates([2.0, 1.0], [1.0, 2.0])
        assert not dominates([1.0, 2.0], [2.0, 1.0])

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DatasetError):
            dominates([1.0, 2.0], [1.0, 2.0, 3.0])

    @given(
        arrays(float, 3, elements=st.floats(0, 10, allow_nan=False)),
        arrays(float, 3, elements=st.floats(0, 10, allow_nan=False)),
    )
    @settings(max_examples=60, deadline=None)
    def test_antisymmetry(self, first, second):
        assert not (dominates(first, second) and dominates(second, first))

    @given(arrays(float, 4, elements=st.floats(0, 10, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_irreflexive(self, vector):
        assert not dominates(vector, vector)


class TestDominanceMatrix:
    def test_matches_pairwise_checks(self):
        rng = np.random.default_rng(0)
        scores = rng.random((8, 3))
        matrix = dominance_matrix(scores)
        for i in range(8):
            for j in range(8):
                assert matrix[i, j] == dominates(scores[i], scores[j])

    def test_rejects_1d_input(self):
        with pytest.raises(DatasetError):
            dominance_matrix(np.arange(4.0))


class TestSkyline:
    def test_skyline_of_chain(self):
        scores = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        assert list(skyline_indices(scores)) == [2]

    def test_skyline_of_antichain(self):
        scores = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        assert list(skyline_indices(scores)) == [0, 1, 2]

    def test_skyline_members_are_not_dominated(self):
        rng = np.random.default_rng(1)
        scores = rng.random((30, 3))
        skyline = set(skyline_indices(scores).tolist())
        for i in range(30):
            dominated = any(dominates(scores[j], scores[i]) for j in range(30) if j != i)
            assert (i in skyline) == (not dominated)


class TestNonDominatedPairs:
    def test_counts_match_matrix(self):
        rng = np.random.default_rng(2)
        scores = rng.random((12, 2))
        pairs = non_dominated_pairs(scores)
        expected = 0
        for i in range(11):
            for j in range(i + 1, 12):
                if not dominates(scores[i], scores[j]) and not dominates(scores[j], scores[i]):
                    expected += 1
        assert len(pairs) == expected

    def test_pairs_are_ordered_and_unique(self):
        rng = np.random.default_rng(3)
        scores = rng.random((10, 3))
        pairs = non_dominated_pairs(scores)
        assert all(i < j for i, j in pairs)
        assert len(set(pairs)) == len(pairs)


class TestIterExchangePairChunks:
    """Chunked pair enumeration must reproduce the one-shot kernel exactly."""

    @pytest.mark.perf_smoke
    @pytest.mark.parametrize("row_chunk_size", [1, 3, 7, 64, None])
    def test_concatenated_chunks_match_one_shot(self, row_chunk_size):
        rng = np.random.default_rng(13)
        scores = rng.uniform(0.0, 1.0, size=(57, 3))
        scores[5] = scores[20]  # exact duplicate
        scores[8] = scores[30] + 5e-9  # allclose duplicate
        scores[11] = scores[40] + 0.2  # dominated pair
        full = exchange_pair_indices(scores)
        chunks = list(iter_exchange_pair_chunks(scores, row_chunk_size=row_chunk_size))
        assert np.array_equal(np.concatenate(chunks), full)

    def test_each_chunk_covers_a_row_block(self):
        rng = np.random.default_rng(1)
        scores = rng.uniform(0.0, 1.0, size=(20, 3))
        chunks = list(iter_exchange_pair_chunks(scores, row_chunk_size=6))
        assert len(chunks) == 4
        for block, chunk in enumerate(chunks):
            if chunk.shape[0]:
                assert np.all(chunk[:, 0] >= block * 6)
                assert np.all(chunk[:, 0] < (block + 1) * 6)
                assert np.all(chunk[:, 1] > chunk[:, 0])

    def test_rejects_bad_input(self):
        with pytest.raises(DatasetError):
            list(iter_exchange_pair_chunks(np.ones(5)))
        with pytest.raises(DatasetError):
            list(iter_exchange_pair_chunks(np.ones((4, 2)), row_chunk_size=0))


class TestConvexLayers:
    def test_layers_partition_items(self):
        rng = np.random.default_rng(4)
        scores = rng.random((25, 2))
        layers = convex_layers(scores)
        combined = np.sort(np.concatenate(layers))
        assert np.array_equal(combined, np.arange(25))

    def test_first_layer_contains_best_single_attribute_items(self):
        rng = np.random.default_rng(5)
        scores = rng.random((40, 2))
        first_layer = set(convex_layers(scores, max_layers=1)[0].tolist())
        assert int(np.argmax(scores[:, 0])) in first_layer
        assert int(np.argmax(scores[:, 1])) in first_layer

    def test_max_layers_caps_output(self):
        rng = np.random.default_rng(6)
        scores = rng.random((30, 2))
        layers = convex_layers(scores, max_layers=2)
        assert len(layers) <= 2

    def test_upper_hull_is_subset_of_skyline_closure(self):
        rng = np.random.default_rng(7)
        scores = rng.random((30, 2))
        hull = set(upper_hull_indices(scores).tolist())
        skyline = set(skyline_indices(scores).tolist())
        assert hull.issubset(skyline | hull)

    def test_upper_hull_rejects_1d(self):
        with pytest.raises(DatasetError):
            upper_hull_indices(np.arange(5.0))


class TestTopkCandidates:
    def test_candidates_cover_every_linear_topk(self):
        """Any top-k of any non-negative weight vector must lie in the candidate set."""
        rng = np.random.default_rng(8)
        scores = rng.random((30, 2))
        k = 5
        candidates = set(topk_candidate_indices(scores, k).tolist())
        for _ in range(50):
            weights = np.abs(rng.normal(size=2)) + 1e-9
            order = np.argsort(-(scores @ weights), kind="stable")
            assert set(order[:k].tolist()).issubset(candidates)

    def test_k_larger_than_dataset_returns_everything(self):
        scores = np.random.default_rng(9).random((10, 3))
        assert len(topk_candidate_indices(scores, 50)) == 10

    def test_k_must_be_positive(self):
        with pytest.raises(DatasetError):
            topk_candidate_indices(np.ones((3, 2)), 0)
