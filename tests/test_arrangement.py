"""Tests for the incremental arrangement and the arrangement tree.

The central invariants: (1) both constructions produce the same set of
non-empty regions (the arrangement is unique, only its index differs), and
(2) the regions partition the angle box — every point belongs to at least one
region, and representative points of distinct regions are separated by at
least one inserted hyperplane.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.angles import HALF_PI
from repro.geometry.arrangement import Arrangement
from repro.geometry.arrangement_tree import ArrangementTree
from repro.geometry.hyperplane import Hyperplane, Region


@pytest.fixture
def sample_hyperplanes() -> list[Hyperplane]:
    return [
        Hyperplane((1.0, 1.0)),
        Hyperplane((2.0, 0.5)),
        Hyperplane((0.8, 2.5)),
        Hyperplane((3.0, 3.0)),
    ]


def region_signature(region: Region, hyperplanes: list[Hyperplane]) -> tuple[int, ...]:
    """Sign vector of a region's interior point with respect to all hyperplanes."""
    point = region.interior_point()
    return tuple(1 if plane.evaluate(point) > 0 else -1 for plane in hyperplanes)


class TestArrangement:
    def test_single_hyperplane_gives_two_regions(self):
        arrangement = Arrangement(dimension=2)
        arrangement.insert(Hyperplane((1.0, 1.0)))
        non_empty = arrangement.non_empty_regions()
        assert len(non_empty) == 2

    def test_region_count_growth_bound(self, sample_hyperplanes):
        """k lines split the plane into at most 1 + k + C(k,2) regions."""
        arrangement = Arrangement.build(sample_hyperplanes, dimension=2)
        k = len(sample_hyperplanes)
        assert arrangement.n_regions <= 1 + k + k * (k - 1) // 2

    def test_every_point_is_covered(self, sample_hyperplanes):
        arrangement = Arrangement.build(sample_hyperplanes, dimension=2)
        rng = np.random.default_rng(0)
        regions = arrangement.non_empty_regions()
        for _ in range(30):
            point = rng.uniform(0, HALF_PI, size=2)
            assert any(region.contains(point, tolerance=1e-9) for region in regions)

    def test_distinct_regions_have_distinct_sign_vectors(self, sample_hyperplanes):
        arrangement = Arrangement.build(sample_hyperplanes, dimension=2)
        signatures = [
            region_signature(region, sample_hyperplanes)
            for region in arrangement.non_empty_regions()
        ]
        assert len(signatures) == len(set(signatures))

    def test_hyperplane_that_misses_base_region_splits_nothing(self):
        base = Region.whole_space(2).with_half_space(Hyperplane((1.0, 1.0)).negative())
        arrangement = Arrangement(dimension=2, base_region=base)
        splits = arrangement.insert(Hyperplane((0.1, 0.1)))  # far outside the base region
        assert splits == 0
        assert arrangement.n_regions == 1

    def test_dimension_mismatch_raises(self):
        arrangement = Arrangement(dimension=2)
        with pytest.raises(GeometryError):
            arrangement.insert(Hyperplane((1.0, 1.0, 1.0)))

    def test_invalid_dimension_raises(self):
        with pytest.raises(GeometryError):
            Arrangement(dimension=0)


class TestArrangementTree:
    def test_leaf_regions_match_flat_arrangement(self, sample_hyperplanes):
        flat = Arrangement.build(sample_hyperplanes, dimension=2)
        tree = ArrangementTree(dimension=2)
        for hyperplane in sample_hyperplanes:
            tree.insert(hyperplane)
        flat_signatures = {
            region_signature(region, sample_hyperplanes)
            for region in flat.non_empty_regions()
        }
        tree_signatures = {
            region_signature(region, sample_hyperplanes)
            for region in tree.leaf_regions()
        }
        assert flat_signatures == tree_signatures

    def test_locate_returns_containing_region(self, sample_hyperplanes):
        tree = ArrangementTree(dimension=2)
        for hyperplane in sample_hyperplanes:
            tree.insert(hyperplane)
        rng = np.random.default_rng(1)
        for _ in range(20):
            point = rng.uniform(0, HALF_PI, size=2)
            region = tree.locate(point)
            assert region.contains(point, tolerance=1e-9)

    def test_fewer_split_tests_than_flat_scan(self):
        rng = np.random.default_rng(2)
        hyperplanes = [
            Hyperplane(tuple(rng.uniform(0.5, 3.0, size=2))) for _ in range(12)
        ]
        flat = Arrangement(dimension=2)
        tree = ArrangementTree(dimension=2)
        for hyperplane in hyperplanes:
            flat.insert(hyperplane)
            tree.insert(hyperplane)
        assert tree.split_tests <= flat.split_tests

    def test_probe_early_stop(self):
        """insert_with_probe stops at the first region accepted by the probe."""
        tree = ArrangementTree(dimension=2)
        tree.insert(Hyperplane((1.0, 1.0)))
        calls = []

        def probe(region):
            calls.append(region)
            return region.interior_point()

        result = tree.insert_with_probe(Hyperplane((2.0, 0.5)), probe)
        assert result is not None
        assert len(calls) == 1

    def test_probe_none_means_exhausted(self):
        tree = ArrangementTree(dimension=2)
        tree.insert(Hyperplane((1.0, 1.0)))
        result = tree.insert_with_probe(Hyperplane((2.0, 0.5)), lambda region: None)
        assert result is None

    def test_probe_on_empty_tree_covers_both_sides(self):
        tree = ArrangementTree(dimension=2)
        seen = []
        tree.insert_with_probe(Hyperplane((1.0, 1.0)), lambda region: seen.append(region))
        assert len(seen) >= 1

    def test_n_regions_counts_leaves(self, sample_hyperplanes):
        tree = ArrangementTree(dimension=2)
        assert tree.n_regions == 1
        tree.insert(sample_hyperplanes[0])
        assert tree.n_regions == 2

    def test_dimension_mismatch_raises(self):
        tree = ArrangementTree(dimension=2)
        with pytest.raises(GeometryError):
            tree.insert(Hyperplane((1.0,)))

    def test_base_region_restricts_leaves(self):
        base = Region.whole_space(2).with_half_space(Hyperplane((1.0, 1.0)).negative())
        tree = ArrangementTree(dimension=2, base_region=base)
        tree.insert(Hyperplane((0.9, 0.9)))
        for region in tree.leaf_regions():
            point = region.interior_point()
            assert base.contains(point, tolerance=1e-7)
