"""Tests for the experiment harness/workloads and the command-line interface.

Workload functions are exercised at miniature scale: the goal here is that the
code that regenerates every paper figure runs end to end and produces sane,
well-shaped output (the benchmarks run them at larger scale).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.harness import Series, StepTimer, SweepResult, run_sweep
from repro.experiments.reporting import (
    format_histogram,
    format_series,
    format_sweep,
    format_table,
)
from repro.experiments.workloads import (
    default_compas_dataset,
    default_compas_oracle,
    experiment_ablation_convex_layers,
    experiment_fig16_validation,
    experiment_fig17_2d_preprocessing,
    experiment_fig18_arrangement_tree,
    experiment_fig19_region_growth,
    experiment_fig20_hyperplanes,
    experiment_fig21_cell_hyperplanes,
    experiment_fig22_preprocessing_vs_n,
    experiment_fig23_preprocessing_vs_d,
    experiment_online_2d,
    experiment_online_md,
    experiment_sampling_dot,
    experiment_sec62_layouts,
)


class TestHarness:
    def test_step_timer(self):
        timer = StepTimer()
        with timer.measure("work"):
            sum(range(1000))
        assert timer.seconds("work") > 0.0
        assert "work" in timer.as_dict()
        assert timer.seconds("missing") == 0.0

    def test_series_and_sweep(self):
        series = Series("s", "x", "y")
        series.add(1, 2)
        series.add(3, 4)
        assert len(series) == 2
        assert series.rows() == [(1.0, 2.0), (3.0, 4.0)]

        result = run_sweep("n", [1, 2], lambda value, res: res.series_named("y").add(value, value * 2))
        assert result.series["y"].ys == [2.0, 4.0]

    def test_reporting_formats(self):
        table = format_table(["a", "b"], [[1, 2.5], [3, 0.0001]])
        assert "a" in table and "b" in table
        series = Series("s", "x", "y")
        series.add(1, 2)
        assert "x" in format_series(series)
        sweep = SweepResult(parameter="n")
        sweep.series_named("y").add(1, 2)
        assert "n" in format_sweep(sweep)
        assert "(empty sweep)" in format_sweep(SweepResult(parameter="n"))
        assert "bucket" in format_histogram({1: 2}, title="t")


class TestDefaults:
    def test_default_dataset_and_oracle(self):
        dataset = default_compas_dataset(n=50, d=3)
        oracle = default_compas_oracle(dataset)
        assert dataset.n_attributes == 3
        assert oracle.max_fraction is not None


@pytest.mark.slow
class TestWorkloadsSmallScale:
    def test_fig16_validation(self):
        result = experiment_fig16_validation(n_items=40, d=3, n_queries=10, n_cells=16)
        assert result.n_queries == 10
        assert result.n_already_satisfactory + len(result.distances) == 10
        counts = result.cumulative_counts()
        assert all(count <= len(result.distances) for count in counts.values())

    def test_sec62_layouts(self):
        layouts = experiment_sec62_layouts(n_items=60, n_queries=5)
        assert len(layouts) == 3
        for layout in layouts:
            assert layout.n_regions >= 0
            # The repair distance is NaN when a configuration is unsatisfiable
            # at this miniature scale; otherwise it must be non-negative.
            if not np.isnan(layout.max_repair_distance):
                assert layout.max_repair_distance >= 0.0

    def test_online_2d(self):
        timing = experiment_online_2d(n_items=200, n_queries=5)
        assert timing.mean_query_seconds > 0.0
        assert timing.mean_ordering_seconds > 0.0

    def test_online_md(self):
        results = experiment_online_md(
            d_values=(3,), n_items=30, n_queries=5, n_cells=16, max_hyperplanes=20
        )
        assert len(results) == 1
        assert results[0].speedup > 0.0

    def test_fig17(self):
        sweep = experiment_fig17_2d_preprocessing(n_values=(30, 60))
        assert len(sweep.series["ordering_exchanges"]) == 2
        assert sweep.series["ordering_exchanges"].ys[1] >= sweep.series["ordering_exchanges"].ys[0]

    def test_fig18(self):
        sweep = experiment_fig18_arrangement_tree(n_items=15, hyperplane_counts=(5, 10))
        assert len(sweep.series["baseline_seconds"]) == 2
        assert len(sweep.series["arrangement_tree_seconds"]) == 2

    def test_fig19(self):
        sweep = experiment_fig19_region_growth(n_items=15, checkpoints=(5, 10))
        regions = sweep.series["regions"].ys
        assert regions == sorted(regions)

    def test_fig20(self):
        sweep = experiment_fig20_hyperplanes(n_values=(20, 40))
        counts = sweep.series["hyperplanes"].ys
        assert counts[1] >= counts[0]

    def test_fig21(self):
        counts = experiment_fig21_cell_hyperplanes(
            n_items=20, d=3, n_cells=25, max_hyperplanes=40
        )
        assert counts.shape == (25,)
        assert np.all(np.diff(counts) >= 0)

    def test_fig22(self):
        sweep = experiment_fig22_preprocessing_vs_n(
            n_values=(15, 25), d=3, n_cells=16, max_hyperplanes=20
        )
        totals = sweep.series["total_seconds"].ys
        marks = sweep.series["mark_cell_seconds"].ys
        assert all(total >= mark for total, mark in zip(totals, marks))

    def test_fig23(self):
        sweep = experiment_fig23_preprocessing_vs_d(
            d_values=(3,), n_items=20, n_cells=16, max_hyperplanes=15
        )
        assert len(sweep.series["total_seconds"]) == 1

    def test_sampling(self):
        result = experiment_sampling_dot(
            full_size=2000, sample_size=50, n_cells=16, max_hyperplanes=25
        )
        assert result.n_functions_checked >= 0
        assert result.n_satisfactory_on_full <= max(result.n_functions_checked, 1)

    def test_ablation_layers(self):
        result = experiment_ablation_convex_layers(n_items=25, d=3, k=8)
        assert result["convex_layers_hyperplanes"] <= result["full_hyperplanes"]


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(
            ["suggest", "--attribute", "race", "--group", "AA", "--weights", "0.5,0.5"]
        )
        assert args.command == "suggest"

    def test_suggest_requires_a_bound(self, capsys):
        code = main(
            [
                "suggest",
                "--dataset",
                "compas",
                "--n",
                "30",
                "--d",
                "2",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--weights",
                "0.5,0.5",
            ]
        )
        assert code == 2

    def test_suggest_2d_runs(self, capsys):
        code = main(
            [
                "suggest",
                "--dataset",
                "compas",
                "--n",
                "60",
                "--d",
                "2",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "0.3",
                "--max-share",
                "0.6",
                "--weights",
                "0.9,0.1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "constraint" in output

    @pytest.mark.slow
    def test_suggest_3d_runs(self, capsys):
        code = main(
            [
                "suggest",
                "--dataset",
                "compas",
                "--n",
                "25",
                "--d",
                "3",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "8",
                "--max-share",
                "0.6",
                "--n-cells",
                "16",
                "--max-hyperplanes",
                "20",
                "--weights",
                "0.6,0.2,0.2",
            ]
        )
        assert code == 0

    def test_suggest_from_csv(self, tmp_path, capsys):
        from repro.data.synthetic import make_compas_like

        dataset = make_compas_like(n=50, seed=0).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        path = tmp_path / "data.csv"
        dataset.to_csv(str(path))
        code = main(
            [
                "suggest",
                "--csv",
                str(path),
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "0.3",
                "--max-share",
                "0.6",
                "--weights",
                "0.5,0.5",
            ]
        )
        assert code == 0
