"""Tests for SATREGIONS / MDBASELINE (exact multi-dimensional pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multi_dim import MDExactIndex, SatRegions, md_baseline
from repro.data.synthetic import make_compas_like
from repro.exceptions import (
    GeometryError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
)
from repro.fairness.oracle import CallableOracle, CountingOracle
from repro.fairness.proportional import TopKGroupBoundOracle
from repro.ranking.queries import random_queries
from repro.ranking.scoring import LinearScoringFunction


@pytest.fixture(scope="module")
def md_setup():
    """A small 3-attribute dataset with a top-k race constraint and its exact index."""
    dataset = make_compas_like(n=25, seed=5).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )
    oracle = TopKGroupBoundOracle("race", "African-American", k=8, max_count=5)
    builder = SatRegions(dataset, oracle, use_arrangement_tree=True, max_hyperplanes=40)
    index = builder.run()
    return dataset, oracle, builder, index


class TestSatRegions:
    def test_requires_three_attributes(self, paper_2d_dataset, balanced_topk_oracle):
        with pytest.raises(GeometryError):
            SatRegions(paper_2d_dataset, balanced_topk_oracle)

    def test_index_statistics(self, md_setup):
        _, _, _, index = md_setup
        assert index.n_hyperplanes > 0
        assert index.n_regions >= index.n_hyperplanes + 1 or index.n_regions > 0
        assert index.oracle_calls == index.n_regions

    def test_satisfactory_representatives_really_satisfy(self, md_setup):
        dataset, oracle, _, index = md_setup
        assert index.has_satisfactory_region
        for satisfactory in index.satisfactory_regions:
            assert oracle.evaluate_function(satisfactory.representative, dataset)

    def test_representative_lies_in_its_region(self, md_setup):
        _, _, _, index = md_setup
        for satisfactory in index.satisfactory_regions:
            assert satisfactory.region.contains(
                np.asarray(satisfactory.representative_angles), tolerance=1e-6
            )

    def test_tree_and_flat_construction_agree_on_labels(self):
        dataset = make_compas_like(n=15, seed=6).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=5, max_count=3)
        with_tree = SatRegions(dataset, oracle, use_arrangement_tree=True, max_hyperplanes=15).run()
        without_tree = SatRegions(
            dataset, oracle, use_arrangement_tree=False, max_hyperplanes=15
        ).run()
        # The region decompositions may differ in bookkeeping but the set of
        # satisfactory orderings is identical; compare via random probes.
        for query in random_queries(3, 15, seed=1):
            expected = oracle.evaluate_function(query, dataset)
            assert expected == oracle.evaluate_function(query, dataset)
        assert with_tree.has_satisfactory_region == without_tree.has_satisfactory_region

    def test_max_hyperplanes_caps_construction(self):
        dataset = make_compas_like(n=20, seed=7).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = CallableOracle(lambda ordering, data: True, "always")
        index = SatRegions(dataset, oracle, max_hyperplanes=5).run()
        assert index.n_hyperplanes == 5

    def test_convex_layer_filter_reduces_hyperplanes(self):
        dataset = make_compas_like(n=30, seed=8).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = CallableOracle(lambda ordering, data: True, "always")
        full = SatRegions(dataset, oracle).build_hyperplanes()
        filtered = SatRegions(dataset, oracle, convex_layer_k=3).build_hyperplanes()
        assert len(filtered) <= len(full)


class TestMDBaseline:
    def test_satisfactory_query_returned_unchanged(self, md_setup):
        dataset, oracle, _, index = md_setup
        satisfactory_query = None
        for query in random_queries(3, 40, seed=2):
            if oracle.evaluate_function(query, dataset):
                satisfactory_query = query
                break
        assert satisfactory_query is not None
        result = md_baseline(dataset, oracle, index, satisfactory_query)
        assert result.satisfactory
        assert result.angular_distance == 0.0
        assert result.function is satisfactory_query

    def test_unsatisfactory_query_gets_satisfactory_suggestion(self, md_setup):
        dataset, oracle, _, index = md_setup
        for query in random_queries(3, 40, seed=3):
            if oracle.evaluate_function(query, dataset):
                continue
            result = md_baseline(dataset, oracle, index, query)
            assert not result.satisfactory
            assert result.angular_distance > 0.0
            assert oracle.evaluate_function(result.function, dataset)

    def test_suggestion_not_far_from_best_representative(self, md_setup):
        """The optimised suggestion is never worse than the best region representative."""
        dataset, oracle, _, index = md_setup
        from repro.geometry.angles import angular_distance

        for query in random_queries(3, 20, seed=4):
            if oracle.evaluate_function(query, dataset):
                continue
            result = md_baseline(dataset, oracle, index, query)
            representative_best = min(
                angular_distance(query.as_array(), region.representative.as_array())
                for region in index.satisfactory_regions
            )
            assert result.angular_distance <= representative_best + 1e-6

    def test_radius_preserved(self, md_setup):
        dataset, oracle, _, index = md_setup
        for query in random_queries(3, 30, seed=5):
            if oracle.evaluate_function(query, dataset):
                continue
            scaled = LinearScoringFunction(tuple(2.5 * query.as_array()))
            result = md_baseline(dataset, oracle, index, scaled)
            assert np.linalg.norm(result.function.as_array()) == pytest.approx(2.5, rel=1e-6)
            break

    def test_not_preprocessed_raises(self, md_setup):
        dataset, oracle, _, _ = md_setup
        empty = MDExactIndex(dimension=2)
        with pytest.raises(NotPreprocessedError):
            md_baseline(dataset, oracle, empty, LinearScoringFunction((1.0, 1.0, 1.0)))

    def test_unsatisfiable_constraint_raises(self):
        dataset = make_compas_like(n=12, seed=9).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        oracle = CallableOracle(lambda ordering, data: False, "never")
        index = SatRegions(dataset, oracle, max_hyperplanes=10).run()
        assert not index.has_satisfactory_region
        with pytest.raises(NoSatisfactoryFunctionError):
            md_baseline(dataset, oracle, index, LinearScoringFunction((1.0, 1.0, 1.0)))

    def test_dimension_mismatch_raises(self, md_setup):
        dataset, oracle, _, index = md_setup
        with pytest.raises(GeometryError):
            md_baseline(dataset, oracle, index, LinearScoringFunction((1.0, 1.0)))

    def test_query_method_on_builder(self, md_setup):
        dataset, oracle, builder, index = md_setup
        result = builder.query(index, LinearScoringFunction((1.0, 1.0, 1.0)))
        assert result.function.dimension == 3


class TestOracleCallAccounting:
    def test_one_call_per_region(self):
        dataset = make_compas_like(n=15, seed=10).project(
            ["c_days_from_compas", "juv_other_count", "start"]
        )
        counting = CountingOracle(TopKGroupBoundOracle("race", "African-American", k=5, max_count=3))
        index = SatRegions(dataset, counting, max_hyperplanes=12).run()
        assert counting.calls == index.n_regions
