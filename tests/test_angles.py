"""Unit and property tests for the angle coordinate system."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import GeometryError
from repro.geometry.angles import (
    HALF_PI,
    angular_distance,
    angular_distance_angles,
    clamp_angles,
    is_first_orthant_direction,
    to_angles,
    to_angles_many,
    to_weights,
)


def direction_arrays(dimension: int):
    """Hypothesis strategy for valid first-orthant directions."""
    return arrays(
        float,
        dimension,
        elements=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
    ).filter(lambda w: np.any(w > 1e-6))


class TestToAngles:
    def test_2d_matches_arctangent(self):
        angles = to_angles(np.array([1.0, 1.0]))
        assert angles.shape == (1,)
        assert angles[0] == pytest.approx(math.pi / 4)

    def test_axis_directions(self):
        assert to_angles(np.array([1.0, 0.0]))[0] == pytest.approx(0.0)
        assert to_angles(np.array([0.0, 1.0]))[0] == pytest.approx(HALF_PI)

    def test_3d_known_value(self):
        angles = to_angles(np.array([0.0, 0.0, 1.0]))
        assert angles[0] == pytest.approx(HALF_PI)
        assert angles[1] == pytest.approx(HALF_PI)

    def test_scale_invariance(self):
        first = to_angles(np.array([0.2, 0.5, 0.3]))
        second = to_angles(np.array([2.0, 5.0, 3.0]))
        assert np.allclose(first, second)

    def test_rejects_negative_weights(self):
        with pytest.raises(GeometryError):
            to_angles(np.array([1.0, -0.1]))

    def test_rejects_zero_vector(self):
        with pytest.raises(GeometryError):
            to_angles(np.zeros(3))

    def test_rejects_single_weight(self):
        with pytest.raises(GeometryError):
            to_angles(np.array([1.0]))

    @given(direction_arrays(4))
    @settings(max_examples=80, deadline=None)
    def test_angles_in_legal_box(self, weights):
        angles = to_angles(weights)
        assert np.all(angles >= 0.0)
        assert np.all(angles <= HALF_PI + 1e-12)


class TestToAnglesMany:
    @pytest.mark.perf_smoke
    @pytest.mark.parametrize("dimension", [2, 3, 4, 5])
    def test_bit_identical_to_scalar_rows(self, dimension):
        rng = np.random.default_rng(dimension)
        matrix = rng.uniform(0.0, 10.0, size=(200, dimension))
        matrix[::7] = 0.0
        matrix[::7, 0] = 1.0  # rows with a single positive entry
        batched = to_angles_many(matrix)
        scalar = np.array([to_angles(row) for row in matrix])
        assert np.array_equal(batched, scalar)

    def test_rejects_non_matrix_input(self):
        with pytest.raises(GeometryError):
            to_angles_many(np.array([1.0, 2.0]))
        with pytest.raises(GeometryError):
            to_angles_many(np.ones((3, 1)))

    def test_rejects_invalid_rows(self):
        with pytest.raises(GeometryError):
            to_angles_many(np.array([[1.0, 2.0], [0.0, 0.0]]))
        with pytest.raises(GeometryError):
            to_angles_many(np.array([[1.0, -2.0]]))


class TestToWeights:
    def test_unit_norm_output(self):
        weights = to_weights(np.array([0.3, 0.7]))
        assert np.linalg.norm(weights) == pytest.approx(1.0)

    def test_radius_scaling(self):
        weights = to_weights(np.array([0.5]), radius=3.0)
        assert np.linalg.norm(weights) == pytest.approx(3.0)

    def test_rejects_non_positive_radius(self):
        with pytest.raises(GeometryError):
            to_weights(np.array([0.5]), radius=0.0)

    def test_rejects_nan_angles(self):
        with pytest.raises(GeometryError):
            to_weights(np.array([np.nan]))

    @given(direction_arrays(3))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_direction(self, weights):
        """to_weights(to_angles(w)) is the unit vector along w (the same ray)."""
        angles = to_angles(weights)
        recovered = to_weights(angles)
        expected = weights / np.linalg.norm(weights)
        assert np.allclose(recovered, expected, atol=1e-9)

    @given(
        arrays(float, 2, elements=st.floats(0.0, HALF_PI, allow_nan=False)),
    )
    @settings(max_examples=80, deadline=None)
    def test_inverse_round_trip_from_angles(self, angles):
        """to_angles(to_weights(Θ)) = Θ except at degenerate poles."""
        weights = to_weights(angles)
        if np.count_nonzero(weights > 1e-9) < 2 and not np.allclose(angles, to_angles(weights)):
            # At the poles several angle vectors map to the same ray; only the
            # direction is recoverable, which the previous test covers.
            return
        assert angular_distance_angles(angles, to_angles(weights)) == pytest.approx(0.0, abs=1e-7)


class TestAngularDistance:
    def test_identical_rays_have_zero_distance(self):
        assert angular_distance([1.0, 1.0], [10.0, 10.0]) == pytest.approx(0.0, abs=1e-6)

    def test_orthogonal_axes(self):
        assert angular_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(HALF_PI)

    def test_paper_example(self):
        """Distance between x+y and x is π/4 (paper §2)."""
        assert angular_distance([1.0, 1.0], [1.0, 0.0]) == pytest.approx(math.pi / 4)

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            angular_distance([1.0, 0.0], [1.0, 0.0, 0.0])

    @given(direction_arrays(3), direction_arrays(3))
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, first, second):
        assert angular_distance(first, second) == pytest.approx(
            angular_distance(second, first), abs=1e-12
        )

    @given(direction_arrays(3), direction_arrays(3), direction_arrays(3))
    # Parallel rays at different scales: arccos noise makes the left side
    # ~1.5e-8 while both right-side terms are exactly 0.
    @example(
        np.array([1.56450694] * 3), np.array([1.0] * 3), np.array([1.59375] * 3)
    )
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        # Slack covers arccos noise near parallel rays (~1.5e-8 for exactly
        # parallel inputs whose normalised dot product rounds above 1).
        assert angular_distance(a, c) <= angular_distance(a, b) + angular_distance(b, c) + 1e-7

    @given(direction_arrays(4))
    @settings(max_examples=50, deadline=None)
    def test_first_orthant_distances_at_most_half_pi(self, weights):
        other = np.ones(4)
        assert 0.0 <= angular_distance(weights, other) <= HALF_PI + 1e-12


class TestHelpers:
    def test_is_first_orthant_direction(self):
        assert is_first_orthant_direction(np.array([0.0, 1.0]))
        assert not is_first_orthant_direction(np.array([0.0, 0.0]))
        assert not is_first_orthant_direction(np.array([-1.0, 1.0]))
        assert not is_first_orthant_direction(np.array([np.inf, 1.0]))

    def test_clamp_angles(self):
        clamped = clamp_angles(np.array([-0.1, HALF_PI + 0.1, 0.5]))
        assert clamped[0] == 0.0
        assert clamped[1] == HALF_PI
        assert clamped[2] == 0.5
