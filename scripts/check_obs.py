#!/usr/bin/env python
"""Observability smoke gate: deterministic traces and metrics on a fake clock.

Two round trips, no dataset and no preprocessing, so the gate runs in
milliseconds:

1. **Trace export** — drive a :class:`repro.obs.trace.TraceRecorder` on a
   :class:`repro.resilience.policy.FakeClock` through a nested span tree,
   twice from scratch, and require the two ``export_jsonl()`` texts to be
   byte-identical and to parse back through ``parse_trace_jsonl``.
2. **Metrics snapshot** — exercise counters, gauges and histograms on two
   :class:`repro.obs.metrics.MetricsRegistry` instances in different
   creation orders, and require byte-identical ``to_json()`` output plus a
   correct ``merge``/``reset`` round trip.

Usage::

    PYTHONPATH=src python scripts/check_obs.py

Exits 0 when the observability layer is deterministic, 1 otherwise.  Runs as
a gate inside ``scripts/check_all.py``; the full behaviour suite lives in
``tests/test_obs.py`` (marker ``obs``).
"""

from __future__ import annotations

import sys


def _build_trace(clock) -> str:
    from repro.obs.trace import TraceRecorder

    recorder = TraceRecorder(clock=clock)
    with recorder.span("engine.suggest_many", q=3):
        with recorder.span("oracle.is_satisfactory_many", q=3):
            clock.advance(0.25)
        with recorder.span("preprocess.pair_chunk", start=0, stop=64) as span:
            clock.advance(0.5)
            span.set("n_pairs", 7)
    return recorder.export_jsonl()


def check_trace_determinism() -> list[str]:
    from repro.obs.trace import parse_trace_jsonl
    from repro.resilience.policy import FakeClock

    first = _build_trace(FakeClock())
    second = _build_trace(FakeClock())
    errors = []
    if first != second:
        errors.append("trace exports differ across two identical FakeClock runs")
    header, spans = parse_trace_jsonl(first)
    if header["n_spans"] != 3 or len(spans) != 3:
        errors.append(f"expected 3 spans in the export, got {header} / {len(spans)}")
    durations = {span["name"]: span["duration"] for span in spans}
    if durations.get("oracle.is_satisfactory_many") != 0.25:
        errors.append("FakeClock durations did not land in the spans")
    return errors


def _build_metrics(order_swapped: bool):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    series = [("2d", 2), ("approximate", 5)]
    if order_swapped:
        series = series[::-1]
    for engine, count in series:
        registry.counter("engine.queries", engine=engine).inc(count)
    registry.gauge("trace.buffer", recorder="main").set(3)
    registry.histogram("engine.suggest_seconds").observe(0.002)
    registry.histogram("engine.suggest_seconds").observe(0.4)
    return registry


def check_metrics_determinism() -> list[str]:
    errors = []
    first = _build_metrics(order_swapped=False)
    second = _build_metrics(order_swapped=True)
    if first.to_json() != second.to_json():
        errors.append("metrics snapshots differ across series creation orders")
    if first.counter_total("engine.queries") != 7:
        errors.append("counter_total did not sum the labeled series")
    first.merge(second)
    if first.counter_total("engine.queries") != 14:
        errors.append("merge did not add the other registry's counters")
    first.reset()
    if first.counter_total("engine.queries") != 0:
        errors.append("reset did not zero the series in place")
    return errors


def main() -> int:
    errors = check_trace_determinism() + check_metrics_determinism()
    for error in errors:
        print(f"check_obs: {error}")
    if errors:
        return 1
    print("check_obs: OK (byte-identical trace exports and metrics snapshots)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
