#!/usr/bin/env python
"""The consolidated pre-PR gate: docs + contracts + doctests, one exit code.

Runs, in order:

1. ``scripts/check_docs.py`` — no stale code references in ``README.md`` /
   ``docs/*.md``;
2. ``scripts/check_contracts.py`` — the contract linter over ``src/repro``
   (plus the scoped ``mypy --strict`` pass when mypy is installed);
3. ``scripts/check_obs.py`` — the observability layer produces byte-identical
   trace exports and metrics snapshots on a fake clock;
4. the doctest pass — ``pytest --doctest-modules`` over the modules whose
   ``>>>`` examples are load-bearing documentation;
5. the differential smoke — the serial-vs-pooled bit-identity test at
   workers 1 and 2 on one small dataset
   (``tests/test_parallel_equivalence.py``, the unconditional smoke target);
6. the delta smoke — the delta-vs-rebuild bit-identity test on one small
   dataset (``tests/test_dynamic_equivalence.py``): an engine maintained
   through ``apply_delta`` must answer identically to a from-scratch rebuild
   on the mutated dataset.

Usage::

    PYTHONPATH=src python scripts/check_all.py            # every gate
    PYTHONPATH=src python scripts/check_all.py --quick    # differential smoke only

``--quick`` is the fast inner-loop check while working on the parallel
layer: it runs only the differential smoke, which forks real worker
processes even on a single-CPU machine.

Prints one PASS/FAIL line per gate and exits 0 only when every gate passed.
This is the command to run before opening a PR; the full test suite
(``PYTHONPATH=src python -m pytest -q``) re-enforces all of them in tier-1.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules whose doctests are part of the documentation contract.
DOCTEST_MODULES = ("src/repro/geometry/dual.py", "src/repro/core/engine.py")

#: The unconditional serial-vs-pooled smoke test (workers 1 and 2, one small
#: dataset) — must stay cheap enough to run on every check_all invocation.
DIFFERENTIAL_SMOKE = (
    "tests/test_parallel_equivalence.py::test_differential_smoke_workers_1_and_2"
)

#: The delta-vs-rebuild smoke test (one small 2-D dataset, one mixed delta) —
#: the cheap incarnation of the PR-10 maintenance bit-identity proof.
DELTA_SMOKE = "tests/test_dynamic_equivalence.py::TestDeltaSmoke::test_delta_smoke"


def _load_script(name: str):
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / "scripts" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_check_docs() -> int:
    return _load_script("check_docs").main()


def run_check_contracts() -> int:
    return _load_script("check_contracts").main()


def run_check_obs() -> int:
    return _load_script("check_obs").main()


def _run_pytest(args: tuple[str, ...], ok_message: str) -> int:
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        print(result.stdout.strip())
        if result.stderr.strip():
            print(result.stderr.strip())
    else:
        print(ok_message)
    return result.returncode


def run_doctests() -> int:
    return _run_pytest(
        ("--doctest-modules", *DOCTEST_MODULES),
        f"doctests: OK ({', '.join(DOCTEST_MODULES)})",
    )


def run_differential_smoke() -> int:
    return _run_pytest(
        (DIFFERENTIAL_SMOKE,),
        "differential smoke: OK (serial == pooled at workers 1 and 2)",
    )


def run_delta_smoke() -> int:
    return _run_pytest(
        (DELTA_SMOKE,),
        "delta smoke: OK (apply_delta == rebuild on the mutated dataset)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="consolidated pre-PR gate")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the serial-vs-pooled differential smoke gate",
    )
    args = parser.parse_args(argv)
    gates = (
        ("check_docs", run_check_docs),
        ("check_contracts", run_check_contracts),
        ("check_obs", run_check_obs),
        ("doctests", run_doctests),
        ("differential_smoke", run_differential_smoke),
        ("delta_smoke", run_delta_smoke),
    )
    if args.quick:
        gates = (("differential_smoke", run_differential_smoke),)
    failures = []
    for name, gate in gates:
        status = gate()
        print(f"[{'PASS' if status == 0 else 'FAIL'}] {name}")
        if status != 0:
            failures.append(name)
    if failures:
        print(f"check_all: {len(failures)} gate(s) failed: {', '.join(failures)}")
        return 1
    print("check_all: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
