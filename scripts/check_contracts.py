#!/usr/bin/env python
"""Run the contract linter (and, when available, a scoped strict mypy pass).

The linter (:mod:`repro.analysis`) statically enforces the repo's contracts —
engine seam, oracle batch parity, typed exceptions, determinism, registry
hygiene — over ``src/repro`` with the committed allowlist
(``contracts_allowlist.txt``).  On top of that, when mypy is installed, the
two fully annotated modules (``src/repro/exceptions.py`` and
``src/repro/core/engine.py``) are checked with ``mypy --strict``; when mypy
is absent the step is skipped cleanly (the container does not ship it).

Run it as a tier-2 check::

    PYTHONPATH=src python scripts/check_contracts.py

Exit status 0 means every contract holds; 1 lists the violations.  The same
gate runs inside the test suite via ``tests/test_static_analysis.py``.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules held to ``mypy --strict`` (scoped: imports are not followed).
STRICT_MODULES = ("src/repro/exceptions.py", "src/repro/core/engine.py")


def run_linter() -> int:
    """Run the contract linter over ``src/repro``; returns its exit code."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis import main as analysis_main

    return analysis_main([str(REPO_ROOT / "src" / "repro")])


def run_mypy() -> int:
    """Scoped ``mypy --strict`` over the annotated modules; 0 when skipped."""
    if importlib.util.find_spec("mypy") is None:
        print("check_contracts: mypy not installed; skipping the strict typing pass")
        return 0
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--strict",
        "--follow-imports=skip",
        "--ignore-missing-imports",
        "--no-error-summary",
        *STRICT_MODULES,
    ]
    result = subprocess.run(command, cwd=REPO_ROOT, capture_output=True, text=True)
    if result.returncode != 0:
        print("check_contracts: mypy --strict failed:")
        print(result.stdout.strip())
        if result.stderr.strip():
            print(result.stderr.strip())
        return 1
    print(f"check_contracts: mypy --strict OK ({', '.join(STRICT_MODULES)})")
    return 0


def main() -> int:
    status = run_linter()
    mypy_status = run_mypy()
    return 1 if (status or mypy_status) else 0


if __name__ == "__main__":
    sys.exit(main())
