#!/usr/bin/env python
"""Fail when the documentation references code that no longer exists.

Docs rot silently: a module gets renamed, a benchmark JSON gets replaced, and
the guides keep pointing at the old names.  This checker walks ``README.md``
and every ``docs/*.md`` file and verifies that each code reference still
resolves:

* inline-code spans that are dotted ``repro.…`` paths must resolve to an
  importable module (a trailing attribute, e.g. ``repro.io.index_store.save_engine``,
  must exist on the module);
* inline-code spans naming ``BENCH_*.json`` trajectories must exist at the
  repository root;
* inline-code spans naming ``bench_*.py`` modules must exist in ``benchmarks/``;
* any ``src/…``, ``docs/…``, ``tests/…``, ``benchmarks/…``, ``examples/…`` or
  ``scripts/…`` path mentioned anywhere (prose, tables, fenced command
  blocks) must exist;
* relative markdown link targets must exist.

Run it as a tier-2 check::

    PYTHONPATH=src python scripts/check_docs.py

Exit status 0 means every reference resolved; 1 lists the stale ones.  The
same checks run inside the test suite via ``tests/test_docs.py``.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Spans that must import as ``repro`` modules (optionally ending in attributes).
_MODULE_SPAN = re.compile(r"repro(\.[A-Za-z_]\w*)+\Z")
#: Committed benchmark-trajectory files referenced by name.
_BENCH_JSON_SPAN = re.compile(r"BENCH_\w+\.json\Z")
#: Benchmark scripts referenced by bare file name.
_BENCH_PY_SPAN = re.compile(r"bench_\w+\.py\Z")
#: Repo-relative paths mentioned anywhere in the text.
_PATH_TOKEN = re.compile(r"(?:src|docs|tests|benchmarks|examples|scripts)/[\w./*-]*")
#: Inline code spans and markdown link targets.
_CODE_SPAN = re.compile(r"`([^`\n]+)`")
_LINK_TARGET = re.compile(r"\[[^\]\n]*\]\(([^)#\s]+)\)")


def _module_error(reference: str) -> str | None:
    """Return an error string if a dotted ``repro.…`` reference does not resolve."""
    parts = reference.split(".")
    for split in range(len(parts), 1, -1):
        candidate = ".".join(parts[:split])
        relative = Path(*parts[:split])
        is_module = (REPO_ROOT / "src" / relative).with_suffix(".py").exists()
        is_package = (REPO_ROOT / "src" / relative / "__init__.py").exists()
        if not (is_module or is_package):
            continue
        attributes = parts[split:]
        if not attributes:
            return None
        try:
            module = importlib.import_module(candidate)
        except Exception as error:  # pragma: no cover - import-time failure
            return f"{reference}: importing {candidate} failed ({error})"
        target = module
        for attribute in attributes:
            if not hasattr(target, attribute):
                return f"{reference}: {candidate} has no attribute {'.'.join(attributes)}"
            target = getattr(target, attribute)
        return None
    return f"{reference}: no module or package under src/ matches"


def _iter_docs() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs_dir = REPO_ROOT / "docs"
    if docs_dir.is_dir():
        docs.extend(sorted(docs_dir.glob("*.md")))
    return [path for path in docs if path.exists()]


def check_file(path: Path) -> list[str]:
    """Return the stale references of one markdown file."""
    text = path.read_text(encoding="utf-8")
    errors: list[str] = []

    for span in _CODE_SPAN.findall(text):
        span = span.strip()
        if _MODULE_SPAN.fullmatch(span):
            error = _module_error(span)
            if error:
                errors.append(error)
        elif _BENCH_JSON_SPAN.fullmatch(span):
            if not (REPO_ROOT / span).exists():
                errors.append(f"{span}: trajectory file missing at the repository root")
        elif _BENCH_PY_SPAN.fullmatch(span):
            if not (REPO_ROOT / "benchmarks" / span).exists():
                errors.append(f"{span}: no such benchmark in benchmarks/")

    for token in _PATH_TOKEN.findall(text):
        token = token.rstrip(".,:;")
        if "*" in token:
            continue  # glob illustration, not a concrete path
        if not (REPO_ROOT / token).exists():
            errors.append(f"{token}: path does not exist")

    for target in _LINK_TARGET.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        if not (path.parent / target).exists():
            errors.append(f"link target {target}: does not exist relative to {path.name}")

    try:
        location = path.relative_to(REPO_ROOT)
    except ValueError:
        location = path.name
    return [f"{location}: {error}" for error in errors]


def collect_errors() -> list[str]:
    """Check every documentation file and return all stale references."""
    errors: list[str] = []
    for path in _iter_docs():
        errors.extend(check_file(path))
    return errors


def main() -> int:
    documents = _iter_docs()
    errors = collect_errors()
    if errors:
        print(f"check_docs: {len(errors)} stale reference(s) in {len(documents)} file(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"check_docs: OK ({len(documents)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
